// Shared randomized-world fixture for the medium equivalence suites
// (tests/test_medium_equivalence.cpp and tests/test_channel_models.cpp).
//
// build_world constructs a deterministic scripted world — node mix,
// medium parameters, traffic bursts, connectivity/carrier-sense queries —
// whose every observable lands in World::log, so two worlds can be
// diffed verbatim (grid vs brute force) or hashed against goldens.
//
// DO NOT change the cfg draw order, the traffic script, or the log
// formats here: the golden-hash suite in test_channel_models.cpp pins
// these exact worlds (seeds 1-12, default channel, no hetero radios) to
// hashes captured from the tree *before* the channel layer existed —
// that is the unit-disk bit-identity guarantee. Widening coverage is
// fine through the `channel` / `hetero_radios` parameters, which leave
// the pinned configuration byte-identical.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::sim::testworld {

struct World {
  Scheduler sched;
  std::vector<std::unique_ptr<MobilityModel>> mobility;
  std::vector<std::shared_ptr<MobilityModel>> anchors;
  std::unique_ptr<Medium> medium;
  /// Chronological observation log: deliveries, completion reports and
  /// query answers, formatted so two worlds can be diffed verbatim.
  std::vector<std::string> log;
};

/// Deterministic world construction: every random choice comes from
/// `seed`; `brute` flips the medium implementation only. `channel`
/// (optional) overrides the channel model while preserving the drawn
/// capture ratio; `hetero_radios` puts every third node on a half-range
/// radio (index arithmetic, no draws).
inline void build_world(World& w, uint64_t seed, bool brute,
                        const ChannelParams* channel = nullptr,
                        bool hetero_radios = false) {
  common::Rng cfg(seed);  // consumed identically by both worlds

  Medium::Params mp;
  mp.range_m = cfg.uniform(15.0, 90.0);
  mp.loss_rate = std::vector<double>{0.0, 0.1, 0.5}[cfg.next_below(3)];
  mp.channel.capture_ratio = cfg.chance(0.5) ? 0.7 : 0.0;
  mp.brute_force = brute;
  if (channel != nullptr) {
    double capture_ratio = mp.channel.capture_ratio;
    mp.channel = *channel;
    mp.channel.capture_ratio = capture_ratio;
  }
  const double field_m = cfg.uniform(80.0, 400.0);
  const Field field{field_m, field_m};
  const size_t n = 5 + cfg.next_below(40);

  w.medium = std::make_unique<Medium>(
      w.sched, mp, common::Rng(common::derive_seed(seed, 1)));

  for (size_t i = 0; i < n; ++i) {
    const Vec2 start{cfg.uniform(0.0, field_m), cfg.uniform(0.0, field_m)};
    common::Rng node_rng(common::derive_seed(seed, 100 + i));
    switch (cfg.next_below(4)) {
      case 0:
        w.mobility.push_back(std::make_unique<StationaryMobility>(start));
        break;
      case 1: {
        RandomDirectionMobility::Params p;
        p.field = field;
        w.mobility.push_back(
            std::make_unique<RandomDirectionMobility>(start, p, node_rng));
        break;
      }
      case 2: {
        RandomWaypointMobility::Params p;
        p.field = field;
        p.pause = Duration::seconds(cfg.uniform(0.0, 5.0));
        w.mobility.push_back(
            std::make_unique<RandomWaypointMobility>(start, p, node_rng));
        break;
      }
      default: {
        if (w.anchors.empty() || cfg.chance(0.6)) {
          RandomWaypointMobility::Params p;
          p.field = field;
          w.anchors.push_back(std::make_shared<RandomWaypointMobility>(
              start, p,
              common::Rng(common::derive_seed(seed, 5000 + w.anchors.size()))));
        }
        const Vec2 offset{cfg.uniform(-30.0, 30.0), cfg.uniform(-30.0, 30.0)};
        w.mobility.push_back(std::make_unique<GroupMobility>(
            w.anchors.back(), offset, field));
        break;
      }
    }
    w.medium->add_node(w.mobility.back().get(),
                       [&w, i](const FramePtr& f, NodeId receiver) {
                         w.log.push_back(
                             "rx t=" + std::to_string(w.sched.now().us) +
                             " from=" + std::to_string(f->sender) + " at=" +
                             std::to_string(receiver));
                       });
  }

  if (hetero_radios) {
    for (size_t i = 0; i < n; i += 3) {
      w.medium->set_node_range_factor(static_cast<NodeId>(i), 0.5);
    }
  }

  // Scripted traffic: bursts of transmissions, many deliberately
  // overlapping (several frames inside the same microsecond-scale
  // window) so collision marking and capture get exercised.
  const int transmissions = 80;
  for (int t = 0; t < transmissions; ++t) {
    const int64_t at_us = static_cast<int64_t>(cfg.next_below(20'000'000));
    const NodeId sender = static_cast<NodeId>(cfg.next_below(n));
    const size_t size = 50 + cfg.next_below(1500);
    w.sched.schedule_at(TimePoint{at_us}, [&w, sender, size, t] {
      auto f = std::make_shared<Frame>();
      f->sender = sender;
      f->payload = common::Bytes(size, static_cast<uint8_t>(t));
      f->kind = "eq";
      w.medium->transmit(f, [&w, t](const Medium::TxReport& r) {
        w.log.push_back("report tx=" + std::to_string(t) +
                        " rcv=" + std::to_string(r.receivers) +
                        " col=" + std::to_string(r.collided) +
                        " lost=" + std::to_string(r.lost) +
                        " del=" + std::to_string(r.delivered));
      });
    });
  }

  // Interleaved connectivity and carrier-sense queries.
  const int queries = 120;
  for (int q = 0; q < queries; ++q) {
    const int64_t at_us = static_cast<int64_t>(cfg.next_below(20'000'000));
    const NodeId node = static_cast<NodeId>(cfg.next_below(n));
    w.sched.schedule_at(TimePoint{at_us}, [&w, node] {
      std::string line = "nbr node=" + std::to_string(node) + " [";
      for (NodeId id : w.medium->neighbors_of(node)) {
        line += std::to_string(id) + ",";
      }
      line += "] deg=" + std::to_string(w.medium->degree_of(node)) +
              " busy=" + std::to_string(w.medium->busy_for(node)) +
              " until=" + std::to_string(w.medium->busy_until(node).us);
      w.log.push_back(line);
    });
  }
}

/// FNV-1a over the chronological log + aggregate stats — the fingerprint
/// the pre-channel-layer goldens were captured with.
inline uint64_t world_hash(const World& w) {
  auto fnv1a = [](uint64_t h, const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
    return h;
  };
  uint64_t h = 14695981039346656037ULL;
  for (const auto& line : w.log) h = fnv1a(h, line);
  const MediumStats& s = w.medium->stats();
  h = fnv1a(h, "tx=" + std::to_string(s.transmissions) +
                   " del=" + std::to_string(s.deliveries) +
                   " loss=" + std::to_string(s.losses) +
                   " cd=" + std::to_string(s.collision_drops) +
                   " cf=" + std::to_string(s.collided_frames) +
                   " bytes=" + std::to_string(s.bytes_sent));
  return h;
}

}  // namespace dapes::sim::testworld
