// Unit tests for TLV encoding and Interest/Data packets.
#include <gtest/gtest.h>

#include "crypto/keychain.hpp"
#include "ndn/packet.hpp"
#include "ndn/tlv.hpp"

namespace dapes::ndn {
namespace {

using common::Bytes;
using common::BytesView;
using common::bytes_of;

class VarNum : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarNum, RoundTrips) {
  Bytes out;
  tlv::append_varnum(out, GetParam());
  tlv::Reader reader(BytesView(out.data(), out.size()));
  EXPECT_EQ(reader.read_varnum(), GetParam());
  EXPECT_TRUE(reader.at_end());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarNum,
                         ::testing::Values(0, 1, 252, 253, 254, 0xffff,
                                           0x10000, 0xffffffffULL,
                                           0x100000000ULL,
                                           0xffffffffffffffffULL));

TEST(Tlv, ElementRoundTrip) {
  Bytes out;
  Bytes value = bytes_of("payload");
  tlv::append_tlv(out, 0x55, BytesView(value.data(), value.size()));
  tlv::Reader reader(BytesView(out.data(), out.size()));
  auto e = reader.read_element();
  EXPECT_EQ(e.type, 0x55u);
  EXPECT_TRUE(common::equal(e.value, BytesView(value.data(), value.size())));
}

TEST(Tlv, NumberEncodingWidths) {
  for (uint64_t v : {0ull, 0xffull, 0x100ull, 0xffffull, 0x10000ull,
                     0xffffffffull, 0x100000000ull}) {
    Bytes out;
    tlv::append_tlv_number(out, 7, v);
    tlv::Reader reader(BytesView(out.data(), out.size()));
    auto e = reader.expect(7);
    EXPECT_EQ(tlv::parse_number(e.value), v);
  }
}

TEST(Tlv, TruncatedElementThrows) {
  Bytes out;
  tlv::append_tlv(out, 1, BytesView());
  out.back() = 10;  // claims 10 bytes of value that do not exist
  tlv::Reader reader(BytesView(out.data(), out.size()));
  EXPECT_THROW(reader.read_element(), tlv::ParseError);
}

TEST(Tlv, ExpectRejectsWrongType) {
  Bytes out;
  tlv::append_tlv(out, 1, BytesView());
  tlv::Reader reader(BytesView(out.data(), out.size()));
  EXPECT_THROW(reader.expect(2), tlv::ParseError);
}

TEST(Tlv, FindSkipsToType) {
  Bytes out;
  tlv::append_tlv(out, 1, BytesView());
  tlv::append_tlv(out, 2, BytesView());
  tlv::append_tlv(out, 3, BytesView());
  tlv::Reader reader(BytesView(out.data(), out.size()));
  auto found = reader.find(3);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->type, 3u);
  EXPECT_FALSE(reader.find(99).has_value());
}

TEST(Interest, EncodeDecodeRoundTrip) {
  Interest interest(Name("/dapes/discovery"));
  interest.set_nonce(0xdeadbeef);
  interest.set_can_be_prefix(true);
  interest.set_lifetime(common::Duration::milliseconds(1500));
  interest.set_hop_limit(3);
  Bytes wire = interest.encode();
  auto decoded = Interest::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, interest);
}

TEST(Interest, AppParametersRoundTrip) {
  Interest interest(Name("/dapes/bitmap/coll/peer/1"));
  interest.set_app_parameters(bytes_of("opaque-bitmap-payload"));
  Bytes wire = interest.encode();
  auto decoded = Interest::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(common::equal(decoded->app_parameters(),
                            bytes_of("opaque-bitmap-payload")));
  EXPECT_TRUE(decoded->has_app_parameters());
}

TEST(Interest, DecodeRejectsNonInterest) {
  Data data(Name("/x"));
  Bytes wire = data.encode();
  EXPECT_FALSE(Interest::decode(BytesView(wire.data(), wire.size())));
}

TEST(Data, EncodeDecodeRoundTrip) {
  Data data(Name("/coll/file/0"));
  data.set_content(bytes_of("content-bytes"));
  data.set_freshness(common::Duration::milliseconds(750));
  Bytes wire = data.encode();
  auto decoded = Data::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
  EXPECT_EQ(decoded->freshness().us, 750000);
}

TEST(Data, SignatureSurvivesRoundTrip) {
  crypto::KeyChain kc;
  crypto::PrivateKey key = kc.generate_key("/producer");
  Data data(Name("/coll/file/1"));
  data.set_content(bytes_of("x"));
  data.sign(key);
  Bytes wire = data.encode();
  auto decoded = Data::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->signature().has_value());
  EXPECT_TRUE(decoded->verify(kc));
}

TEST(Data, TamperedContentFailsVerify) {
  crypto::KeyChain kc;
  crypto::PrivateKey key = kc.generate_key("/producer");
  Data data(Name("/coll/file/1"));
  data.set_content(bytes_of("original"));
  data.sign(key);
  Bytes wire = data.encode();
  auto decoded = Data::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  decoded->set_content(bytes_of("tampered"));
  EXPECT_FALSE(decoded->verify(kc));
}

TEST(Data, UnsignedNeverVerifies) {
  crypto::KeyChain kc;
  Data data(Name("/x"));
  EXPECT_FALSE(data.verify(kc));
}

TEST(Data, ContentDigestMatchesSha) {
  Data data(Name("/x"));
  data.set_content(bytes_of("abc"));
  EXPECT_EQ(data.content_digest(), crypto::Sha256::hash("abc"));
}

TEST(Data, EmptyContentAllowed) {
  Data data(Name("/x"));
  Bytes wire = data.encode();
  auto decoded = Data::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->content().empty());
}

TEST(Packets, UnknownTlvElementsIgnored) {
  // Forward compatibility: an unknown element inside an Interest is
  // skipped, not fatal.
  Interest interest(Name("/a"));
  Bytes wire = interest.encode();
  // Append an unknown TLV inside the Interest body: rebuild manually.
  tlv::Reader outer(BytesView(wire.data(), wire.size()));
  auto packet = outer.expect(tlv::kInterest);
  Bytes inner(packet.value.begin(), packet.value.end());
  tlv::append_tlv(inner, 0x70, BytesView());
  Bytes rebuilt;
  tlv::append_tlv(rebuilt, tlv::kInterest, BytesView(inner.data(), inner.size()));
  auto decoded = Interest::decode(BytesView(rebuilt.data(), rebuilt.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->name(), interest.name());
}

}  // namespace
}  // namespace dapes::ndn
