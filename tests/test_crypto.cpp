// Unit tests for the crypto substrate: SHA-256 vectors, key chain
// signing/trust, Merkle trees (parameterized over leaf counts).
#include <gtest/gtest.h>

#include "crypto/keychain.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace dapes::crypto {
namespace {

using common::Bytes;
using common::BytesView;
using common::bytes_of;

// --- SHA-256 (FIPS 180-4 test vectors) ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::hash(std::string_view{}).to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash("abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .to_hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(ctx.final_digest().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(std::string_view(msg).substr(0, split));
    ctx.update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.final_digest(), Sha256::hash(msg));
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    std::string msg(len, 'x');
    Sha256 ctx;
    ctx.update(msg);
    EXPECT_EQ(ctx.final_digest(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, ResetReusesContext) {
  Sha256 ctx;
  ctx.update("garbage");
  ctx.reset();
  ctx.update("abc");
  EXPECT_EQ(ctx.final_digest(), Sha256::hash("abc"));
}

TEST(Digest, HexRoundTrip) {
  Digest d = Sha256::hash("roundtrip");
  EXPECT_EQ(Digest::from_hex(d.to_hex()), d);
}

TEST(Digest, FromHexRejectsBadLength) {
  EXPECT_THROW(Digest::from_hex("abcd"), std::invalid_argument);
}

TEST(Digest, HashPairOrderMatters) {
  Digest a = Sha256::hash("a");
  Digest b = Sha256::hash("b");
  EXPECT_NE(Sha256::hash_pair(a, b), Sha256::hash_pair(b, a));
}

// --- KeyChain ---

TEST(KeyChain, SignVerify) {
  KeyChain kc;
  PrivateKey key = kc.generate_key("/alice");
  Bytes content = bytes_of("hello");
  Signature sig = key.sign("/data/1", BytesView(content.data(), content.size()));
  EXPECT_TRUE(kc.verify("/data/1", BytesView(content.data(), content.size()), sig));
}

TEST(KeyChain, TamperedContentFails) {
  KeyChain kc;
  PrivateKey key = kc.generate_key("/alice");
  Bytes content = bytes_of("hello");
  Signature sig = key.sign("/data/1", BytesView(content.data(), content.size()));
  Bytes tampered = bytes_of("hellO");
  EXPECT_FALSE(
      kc.verify("/data/1", BytesView(tampered.data(), tampered.size()), sig));
}

TEST(KeyChain, WrongNameFails) {
  KeyChain kc;
  PrivateKey key = kc.generate_key("/alice");
  Bytes content = bytes_of("hello");
  Signature sig = key.sign("/data/1", BytesView(content.data(), content.size()));
  EXPECT_FALSE(
      kc.verify("/data/2", BytesView(content.data(), content.size()), sig));
}

TEST(KeyChain, UnknownSignerFails) {
  KeyChain alice_kc, bob_kc;
  PrivateKey key = alice_kc.generate_key("/alice");
  Bytes content = bytes_of("x");
  Signature sig = key.sign("/n", BytesView(content.data(), content.size()));
  EXPECT_FALSE(bob_kc.verify("/n", BytesView(content.data(), content.size()), sig));
  // After importing the key material, verification succeeds.
  bob_kc.import_key(key);
  EXPECT_TRUE(bob_kc.verify("/n", BytesView(content.data(), content.size()), sig));
}

TEST(KeyChain, TrustAnchors) {
  KeyChain kc;
  PrivateKey key = kc.generate_key("/alice");
  EXPECT_FALSE(kc.is_trusted(key.id()));
  kc.add_trust_anchor(key.id());
  EXPECT_TRUE(kc.is_trusted(key.id()));
}

TEST(KeyChain, DeterministicKeyGeneration) {
  KeyChain a, b;
  EXPECT_EQ(a.generate_key("/x", 5).id(), b.generate_key("/x", 5).id());
  EXPECT_NE(a.generate_key("/x", 5).id(), b.generate_key("/x", 6).id());
  EXPECT_NE(a.generate_key("/x", 5).id(), b.generate_key("/y", 5).id());
}

TEST(KeyChain, NameLengthPrefixPreventsSplicing) {
  // (name="ab", content="c...") must not collide with (name="a",
  // content="bc...").
  KeyChain kc;
  PrivateKey key = kc.generate_key("/alice");
  Bytes c1 = bytes_of("cpayload");
  Bytes c2 = bytes_of("bcpayload");
  Signature sig = key.sign("ab", BytesView(c1.data(), c1.size()));
  EXPECT_FALSE(kc.verify("a", BytesView(c2.data(), c2.size()), sig));
}

// --- Merkle tree ---

class MerkleSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleSizes, ProofsVerifyForEveryLeaf) {
  size_t n = GetParam();
  std::vector<Digest> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
  }
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.leaf_count(), n);
  for (size_t i = 0; i < n; ++i) {
    MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, tree.root()))
        << "n=" << n << " leaf=" << i;
  }
}

TEST_P(MerkleSizes, WrongLeafFailsVerification) {
  size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  std::vector<Digest> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
  }
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(0);
  EXPECT_FALSE(MerkleTree::verify(leaves[1], proof, tree.root()));
}

TEST_P(MerkleSizes, ComputeRootMatchesTree) {
  size_t n = GetParam();
  std::vector<Digest> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash("x" + std::to_string(i)));
  }
  EXPECT_EQ(MerkleTree::compute_root(leaves), MerkleTree(leaves).root());
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                           17, 33, 100));

TEST(Merkle, EmptyTreeDefined) {
  MerkleTree tree{std::vector<Digest>{}};
  EXPECT_EQ(tree.leaf_count(), 0u);
  EXPECT_EQ(tree.root(), Sha256::hash(std::string_view{}));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(Sha256::hash("l" + std::to_string(i)));
  }
  Digest original = MerkleTree::compute_root(leaves);
  for (int i = 0; i < 8; ++i) {
    auto mutated = leaves;
    mutated[i] = Sha256::hash("evil");
    EXPECT_NE(MerkleTree::compute_root(mutated), original);
  }
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree tree(std::vector<Digest>{Sha256::hash("only")});
  EXPECT_THROW(tree.prove(1), std::out_of_range);
}

TEST(Merkle, FromPayloads) {
  std::vector<Bytes> payloads = {bytes_of("p0"), bytes_of("p1"), bytes_of("p2")};
  MerkleTree tree = MerkleTree::from_payloads(payloads);
  std::vector<Digest> leaves;
  for (const auto& p : payloads) {
    leaves.push_back(Sha256::hash(BytesView(p.data(), p.size())));
  }
  EXPECT_EQ(tree.root(), MerkleTree::compute_root(leaves));
}

TEST(Merkle, VerifyRejectsBadProofShape) {
  std::vector<Digest> leaves = {Sha256::hash("a"), Sha256::hash("b")};
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(0);
  MerkleProof truncated = proof;
  truncated.siblings.clear();
  EXPECT_FALSE(MerkleTree::verify(leaves[0], truncated, tree.root()));
  MerkleProof bad_count = proof;
  bad_count.leaf_count = 0;
  EXPECT_FALSE(MerkleTree::verify(leaves[0], bad_count, tree.root()));
  MerkleProof bad_index = proof;
  bad_index.leaf_index = 99;
  EXPECT_FALSE(MerkleTree::verify(leaves[0], bad_index, tree.root()));
}

}  // namespace
}  // namespace dapes::crypto
