// Property tests: the hashed NameTree tables are observably *identical*
// to the retained std::map reference implementation.
//
// Each case drives two full table sets — ContentStore/Pit/Fib sharing one
// NameTree, and ref::ContentStore/ref::Pit/ref::Fib — with the same
// randomized operation stream over a name pool dense in prefix relations
// (small alphabet, depths 0..4). Every observable is compared after every
// operation: find results (by name and content), CanBePrefix winners,
// matches_for_data vectors (order included), LPM face sets, prefixes_for
// enumerations (order included), LRU eviction state, freshness expiry,
// sizes and content-byte accounting, nonce/dead-nonce answers. Any
// divergence in probe logic, trie ordering, or eviction policy shows up
// as a mismatch at the first operation that exposes it.
//
// Direct NameTree structural tests (entry sharing, cleanup) and the Name
// hash-cache tests live at the bottom / in test_ndn_name.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ndn/name_tree.hpp"
#include "ndn/tables.hpp"
#include "ndn/tables_ref.hpp"

namespace dapes::ndn {
namespace {

using common::bytes_of;
using common::Duration;

Data make_data(const Name& name, const std::string& content,
               Duration freshness) {
  Data d{name};
  d.set_content(bytes_of(content));
  d.set_freshness(freshness);
  return d;
}

/// Names dense in prefix relations: depth 0..4 over a 4-symbol alphabet.
Name random_name(common::Rng& rng) {
  static const char* kComps[] = {"a", "b", "coll", "file"};
  Name n;
  const size_t depth = rng.next_below(5);
  for (size_t i = 0; i < depth; ++i) {
    if (rng.chance(0.3)) {
      n.append_number(rng.next_below(4));
    } else {
      n.append(kComps[rng.next_below(4)]);
    }
  }
  return n;
}

std::vector<std::string> uris(const std::vector<Name>& names) {
  std::vector<std::string> out;
  for (const auto& n : names) out.push_back(n.to_uri());
  return out;
}

class TableEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableEquivalence, NameTreeMatchesMapReference) {
  common::Rng rng(GetParam());
  const size_t cs_capacity = 2 + rng.next_below(48);

  auto tree = std::make_shared<NameTree>();
  ContentStore cs(cs_capacity, tree);
  Pit pit(tree);
  Fib fib(tree);
  ref::ContentStore rcs(cs_capacity);
  ref::Pit rpit;
  ref::Fib rfib;

  // Names seen so far — used for the end-of-run whole-state sweep.
  std::vector<Name> pool;

  TimePoint now{0};
  for (int op = 0; op < 4000; ++op) {
    SCOPED_TRACE(op);
    now = now + Duration::microseconds(
                    static_cast<int64_t>(rng.next_below(200'000)));
    Name name = random_name(rng);
    pool.push_back(name);

    switch (rng.next_below(12)) {
      case 0: {  // CS insert (short or long freshness; shared handle path)
        Duration fresh = rng.chance(0.3) ? Duration::milliseconds(300)
                                         : Duration::seconds(3600.0);
        std::string content(1 + rng.next_below(16), 'x');
        Data d = make_data(name, content, fresh);
        if (rng.chance(0.5)) {
          cs.insert(d, now);
          rcs.insert(d, now);
        } else {
          cs.insert(std::make_shared<const Data>(d), now);
          rcs.insert(std::make_shared<const Data>(d), now);
        }
        break;
      }
      case 1: {  // CS exact find
        DataPtr a = cs.find(name, false, now);
        DataPtr b = rcs.find(name, false, now);
        ASSERT_EQ(a != nullptr, b != nullptr);
        if (a) ASSERT_EQ(*a, *b);
        break;
      }
      case 2: {  // CS CanBePrefix find (also exercises expiry eviction)
        DataPtr a = cs.find(name, true, now);
        DataPtr b = rcs.find(name, true, now);
        ASSERT_EQ(a != nullptr, b != nullptr);
        if (a) {
          ASSERT_EQ(a->name().to_uri(), b->name().to_uri());
          ASSERT_EQ(*a, *b);
        }
        break;
      }
      case 3: {  // CS contains (expired entries still count)
        ASSERT_EQ(cs.contains(name), rcs.contains(name));
        break;
      }
      case 4: {  // PIT insert with random flags + nonces
        PitEntry& a = pit.insert(name);
        PitEntry& b = rpit.insert(name);
        if (rng.chance(0.4)) {
          a.can_be_prefix = b.can_be_prefix = true;
        }
        uint32_t nonce = static_cast<uint32_t>(rng.next());
        a.nonces.insert(nonce);
        b.nonces.insert(nonce);
        FaceId face = static_cast<FaceId>(1 + rng.next_below(4));
        a.in_faces.push_back(face);
        b.in_faces.push_back(face);
        break;
      }
      case 5: {  // PIT find
        PitEntry* a = pit.find(name);
        PitEntry* b = rpit.find(name);
        ASSERT_EQ(a != nullptr, b != nullptr);
        if (a) {
          ASSERT_EQ(a->name.to_uri(), b->name.to_uri());
          ASSERT_EQ(a->can_be_prefix, b->can_be_prefix);
          ASSERT_EQ(a->nonces, b->nonces);
          ASSERT_EQ(a->in_faces, b->in_faces);
        }
        break;
      }
      case 6: {  // PIT matches_for_data — order matters
        ASSERT_EQ(uris(pit.matches_for_data(name)),
                  uris(rpit.matches_for_data(name)));
        break;
      }
      case 7: {  // PIT erase
        pit.erase(name);
        rpit.erase(name);
        break;
      }
      case 8: {  // nonce bookkeeping incl. dead-nonce FIFO
        uint32_t nonce = static_cast<uint32_t>(rng.next_below(64));
        ASSERT_EQ(pit.has_nonce(name, nonce), rpit.has_nonce(name, nonce));
        if (rng.chance(0.5)) {
          pit.record_dead_nonce(name, nonce);
          rpit.record_dead_nonce(name, nonce);
          ASSERT_TRUE(pit.has_nonce(name, nonce));
        }
        break;
      }
      case 9: {  // FIB add/remove
        FaceId face = static_cast<FaceId>(1 + rng.next_below(4));
        if (rng.chance(0.7)) {
          fib.add_route(name, face);
          rfib.add_route(name, face);
        } else {
          fib.remove_route(name, face);
          rfib.remove_route(name, face);
        }
        break;
      }
      case 10: {  // FIB longest-prefix match
        ASSERT_EQ(fib.lookup(name), rfib.lookup(name));
        break;
      }
      default: {  // FIB reverse index — enumeration order matters
        FaceId face = static_cast<FaceId>(1 + rng.next_below(4));
        ASSERT_EQ(uris(fib.prefixes_for(face)), uris(rfib.prefixes_for(face)));
        break;
      }
    }

    ASSERT_EQ(cs.size(), rcs.size());
    ASSERT_EQ(cs.content_bytes(), rcs.content_bytes());
    ASSERT_EQ(pit.size(), rpit.size());
    ASSERT_EQ(fib.size(), rfib.size());
  }

  // Whole-state sweep: every name ever touched answers identically, which
  // pins down LRU eviction victims and freshness expiry history.
  for (const Name& name : pool) {
    SCOPED_TRACE(name.to_uri());
    ASSERT_EQ(cs.contains(name), rcs.contains(name));
    DataPtr a = cs.find(name, false, now);
    DataPtr b = rcs.find(name, false, now);
    ASSERT_EQ(a != nullptr, b != nullptr);
    PitEntry* pa = pit.find(name);
    PitEntry* pb = rpit.find(name);
    ASSERT_EQ(pa != nullptr, pb != nullptr);
    ASSERT_EQ(fib.lookup(name), rfib.lookup(name));
    ASSERT_EQ(uris(pit.matches_for_data(name)),
              uris(rpit.matches_for_data(name)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

// ------------------------------------------------- NameTree structurals

TEST(NameTree, SharedEntryAcrossTables) {
  auto tree = std::make_shared<NameTree>();
  ContentStore cs(16, tree);
  Pit pit(tree);
  Fib fib(tree);

  Name name("/coll/file/3");
  Data d{name};
  d.set_content(bytes_of("payload"));
  d.set_freshness(Duration::seconds(10.0));
  cs.insert(d, TimePoint{0});
  pit.insert(name);
  fib.add_route(name, 2);

  // One entry carries all three payloads (plus its ancestor chain:
  // root, /coll, /coll/file).
  NameTree::Entry* e = tree->find_exact(name);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->cs && e->pit && e->fib);
  EXPECT_EQ(tree->size(), 4u);
}

TEST(NameTree, CleanupPrunesEmptyAncestors) {
  auto tree = std::make_shared<NameTree>();
  Pit pit(tree);
  pit.insert(Name("/a/b/c/d"));
  EXPECT_EQ(tree->size(), 5u);  // root + 4 components
  pit.erase(Name("/a/b/c/d"));
  EXPECT_EQ(tree->size(), 0u);

  // Ancestors carrying payloads or siblings survive.
  pit.insert(Name("/a/b"));
  pit.insert(Name("/a/b/c"));
  pit.erase(Name("/a/b/c"));
  EXPECT_EQ(tree->size(), 3u);  // root, /a, /a/b
  EXPECT_NE(pit.find(Name("/a/b")), nullptr);
}

TEST(NameTree, PrefixProbesUseCachedHashes) {
  NameTree tree;
  Name deep("/x/y/z");
  tree.lookup(deep);
  // find_prefix never materializes a prefix Name; probe every depth.
  for (size_t d = 0; d <= deep.size(); ++d) {
    NameTree::Entry* e = tree.find_prefix(deep, d);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->name.to_uri(), deep.prefix(d).to_uri());
    EXPECT_EQ(e->hash, deep.prefix_hash(d));
  }
  EXPECT_EQ(tree.find_prefix(Name("/x/q"), 2), nullptr);
}

TEST(NameTree, StableSizeUnderChurn) {
  // Rehash + cleanup churn: grow well past the initial bucket count,
  // then drain completely.
  auto tree = std::make_shared<NameTree>();
  Pit pit(tree);
  for (uint64_t i = 0; i < 500; ++i) {
    pit.insert(Name("/churn").appended_number(i));
  }
  EXPECT_EQ(pit.size(), 500u);
  EXPECT_EQ(tree->size(), 502u);  // root + /churn + 500 leaves
  for (uint64_t i = 0; i < 500; ++i) {
    pit.erase(Name("/churn").appended_number(i));
  }
  EXPECT_EQ(pit.size(), 0u);
  EXPECT_EQ(tree->size(), 0u);
}

}  // namespace
}  // namespace dapes::ndn
