// The fault-injection subsystem's contracts (DESIGN.md "Fault injection
// & open membership"):
//
//   * FaultPlan purity — compiling is a pure function of (params,
//     population, limit, seed); the sim-limit only truncates; per-process
//     draw streams are independent; the departure floor holds.
//   * Zero-churn equivalence — the wired fault path with every rate at
//     zero (force_wiring) is bit-identical to the untouched
//     fixed-population path, per deterministic TrialResult field, across
//     12 seeds. This is the "paper sweeps stay byte-identical" guarantee
//     in its strongest testable form.
//   * Churn determinism — under real churn (leaves, crashes, flash
//     crowd, liars) the trial is bit-identical between grid and brute
//     media, between --jobs 1 and 8, and across --trial-threads 0/1/2/4.
//   * Graceful degradation — adversarial bitmap liars never stall the
//     honest swarm, and seeder departure after seeding still completes.
//   * Lifecycle tracing — node.join / node.leave / fault.inject /
//     peer.lied records land in the merged trace with the right shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/driver.hpp"
#include "harness/trial_runner.hpp"
#include "sim/faults.hpp"
#include "trace/events.hpp"
#include "trace/format.hpp"

namespace dapes::harness {
namespace {

// --- FaultPlan unit tests --------------------------------------------

sim::FaultPlan::Population small_population() {
  sim::FaultPlan::Population pop;
  for (uint32_t n = 3; n < 23; ++n) pop.removable.push_back(n);
  for (uint32_t n = 30; n < 45; ++n) pop.latent.push_back(n);
  pop.seeder = 2;
  pop.has_seeder = true;
  return pop;
}

sim::FaultParams busy_faults() {
  sim::FaultParams f;
  f.leave_rate_hz = 1.0 / 60.0;
  f.crash_fraction = 0.5;
  f.restart_delay_s = 20.0;
  f.flash_crowd_size = 5;
  f.flash_crowd_at_s = 30.0;
  f.join_rate_hz = 1.0 / 40.0;
  f.seeder_departure_s = 120.0;
  return f;
}

TEST(FaultPlan, CompileIsPure) {
  const auto pop = small_population();
  const auto f = busy_faults();
  const auto a = sim::FaultPlan::compile(f, pop, 600.0, 42);
  const auto b = sim::FaultPlan::compile(f, pop, 600.0, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at.us, b.events()[i].at.us);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
  }
  EXPECT_GT(a.events().size(), 0u);
  // A different trial seed reshapes the schedule.
  const auto c = sim::FaultPlan::compile(f, pop, 600.0, 43);
  const bool same =
      a.events().size() == c.events().size() &&
      std::equal(a.events().begin(), a.events().end(), c.events().begin(),
                 [](const sim::FaultEvent& x, const sim::FaultEvent& y) {
                   return x.at.us == y.at.us && x.kind == y.kind &&
                          x.target == y.target;
                 });
  EXPECT_FALSE(same);
}

TEST(FaultPlan, DefaultParamsCompileEmpty) {
  const auto plan = sim::FaultPlan::compile(sim::FaultParams{},
                                            small_population(), 600.0, 1);
  EXPECT_TRUE(plan.events().empty());
  EXPECT_FALSE(sim::FaultParams{}.any());
  sim::FaultParams forced;
  forced.force_wiring = true;
  EXPECT_TRUE(forced.any());
}

TEST(FaultPlan, SimLimitOnlyTruncates) {
  // Every event of the short plan appears identically in the long plan:
  // the limit truncates the schedule, it never reshapes the draws.
  const auto pop = small_population();
  const auto f = busy_faults();
  const auto short_plan = sim::FaultPlan::compile(f, pop, 150.0, 7);
  const auto long_plan = sim::FaultPlan::compile(f, pop, 600.0, 7);
  std::vector<sim::FaultEvent> long_head;
  for (const auto& ev : long_plan.events()) {
    if (ev.at.us < 150'000'000) long_head.push_back(ev);
  }
  const auto& short_events = short_plan.events();
  ASSERT_EQ(short_events.size(), long_head.size());
  for (size_t i = 0; i < short_events.size(); ++i) {
    EXPECT_EQ(short_events[i].at.us, long_head[i].at.us) << i;
    EXPECT_EQ(short_events[i].kind, long_head[i].kind) << i;
    EXPECT_EQ(short_events[i].target, long_head[i].target) << i;
  }
}

TEST(FaultPlan, StreamsAreIndependent) {
  // Adding a flash crowd must not shift the leave/crash draws: the
  // non-join events are identical with and without it.
  const auto pop = small_population();
  auto f = busy_faults();
  f.flash_crowd_size = 0;
  f.join_rate_hz = 0.0;
  const auto without = sim::FaultPlan::compile(f, pop, 600.0, 9);
  auto g = f;
  g.flash_crowd_size = 5;
  g.join_rate_hz = 1.0 / 40.0;
  const auto with = sim::FaultPlan::compile(g, pop, 600.0, 9);
  std::vector<sim::FaultEvent> non_join;
  for (const auto& ev : with.events()) {
    if (ev.kind != sim::FaultKind::kJoin) non_join.push_back(ev);
  }
  ASSERT_EQ(non_join.size(), without.events().size());
  for (size_t i = 0; i < non_join.size(); ++i) {
    EXPECT_EQ(non_join[i].at.us, without.events()[i].at.us) << i;
    EXPECT_EQ(non_join[i].kind, without.events()[i].kind) << i;
    EXPECT_EQ(non_join[i].target, without.events()[i].target) << i;
  }
}

TEST(FaultPlan, DepartureFloorHolds) {
  // Replay the compiled membership walk: the removable population never
  // drops below ceil(min_alive_fraction * initial size).
  const auto pop = small_population();
  auto f = busy_faults();
  f.leave_rate_hz = 1.0;  // aggressive: the floor must do the work
  f.min_alive_fraction = 0.4;
  const auto plan = sim::FaultPlan::compile(f, pop, 600.0, 11);
  const size_t floor_count = 8;  // ceil(0.4 * 20)
  std::set<uint32_t> alive(pop.removable.begin(), pop.removable.end());
  for (const auto& ev : plan.events()) {
    switch (ev.kind) {
      case sim::FaultKind::kLeave:
      case sim::FaultKind::kCrash:
        ASSERT_TRUE(alive.contains(ev.target)) << "double departure";
        alive.erase(ev.target);
        break;
      case sim::FaultKind::kRestart:
        alive.insert(ev.target);
        break;
      default:
        break;
    }
    EXPECT_GE(alive.size(), floor_count);
  }
}

TEST(FaultPlan, EventsSortedAndJoinsCounted) {
  const auto pop = small_population();
  const auto plan = sim::FaultPlan::compile(busy_faults(), pop, 600.0, 13);
  size_t joins = 0;
  for (size_t i = 0; i < plan.events().size(); ++i) {
    if (i > 0) {
      EXPECT_LE(plan.events()[i - 1].at.us, plan.events()[i].at.us);
    }
    if (plan.events()[i].kind == sim::FaultKind::kJoin) ++joins;
  }
  EXPECT_EQ(plan.admitted_joins(), joins);
  EXPECT_GT(joins, 0u);
  // Join targets consume the latent pool in order, without reuse.
  std::set<uint32_t> seen;
  for (const auto& ev : plan.events()) {
    if (ev.kind != sim::FaultKind::kJoin) continue;
    EXPECT_TRUE(seen.insert(ev.target).second);
    EXPECT_TRUE(std::find(pop.latent.begin(), pop.latent.end(), ev.target) !=
                pop.latent.end());
  }
}

TEST(FaultPlan, AdversaryPickIsDeterministic) {
  sim::FaultParams f;
  f.adversarial_fraction = 0.25;
  std::vector<uint32_t> candidates;
  for (uint32_t n = 0; n < 20; ++n) candidates.push_back(n);
  const auto a = sim::FaultPlan::pick_adversaries(f, candidates, 5);
  const auto b = sim::FaultPlan::pick_adversaries(f, candidates, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 5u);  // floor(0.25 * 20)
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  const auto c = sim::FaultPlan::pick_adversaries(f, candidates, 6);
  EXPECT_NE(a, c);
  f.adversarial_fraction = 0.0;
  EXPECT_TRUE(sim::FaultPlan::pick_adversaries(f, candidates, 5).empty());
}

// --- Trial-level equivalence -----------------------------------------

// Small enough for suite speed; big enough for real contention, relays
// and multi-hop traffic.
ScenarioParams small_field(uint64_t seed) {
  ScenarioParams p;
  p.files = 1;
  p.file_size_bytes = 8 * 1024;
  p.mobile_downloaders = 8;
  p.stationary_downloaders = 2;
  p.pure_forwarders = 3;
  p.dapes_intermediates = 3;
  p.wifi_range_m = 80.0;
  p.data_rate_bps = 11e6;
  p.sim_limit_s = 300.0;
  p.seed = seed;
  return p;
}

ScenarioParams churny_field(uint64_t seed) {
  ScenarioParams p = small_field(seed);
  p.faults.leave_rate_hz = 1.0 / 120.0;
  p.faults.crash_fraction = 0.5;
  p.faults.restart_delay_s = 20.0;
  p.faults.flash_crowd_size = 3;
  p.faults.flash_crowd_at_s = 40.0;
  p.faults.join_rate_hz = 1.0 / 120.0;
  p.faults.adversarial_fraction = 0.2;
  p.peer.knowledge_ttl = p.peer.neighbor_ttl * 2;
  p.peer.stale_retry_limit = 3;
  return p;
}

void expect_equal(const TrialResult& a, const TrialResult& b) {
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
  EXPECT_DOUBLE_EQ(a.completion_fraction, b.completion_fraction);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.tx_by_kind, b.tx_by_kind);
  EXPECT_EQ(a.collided_frames, b.collided_frames);
  EXPECT_EQ(a.peak_state_bytes, b.peak_state_bytes);
  EXPECT_EQ(a.total_state_bytes, b.total_state_bytes);
  EXPECT_EQ(a.peak_knowledge_bytes, b.peak_knowledge_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.system_calls, b.system_calls);
  EXPECT_EQ(a.page_faults, b.page_faults);
}

class FaultEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultEquivalence, ZeroChurnWiringIsByteIdentical) {
  // The wired fault path with every rate at zero must reproduce the
  // fixed-population path bit-for-bit: no extra events, no extra draws,
  // no metric off by one ulp. force_wiring makes this non-vacuous (the
  // harness builds the owner scopes and the empty plan, rather than
  // skipping the wiring).
  ScenarioParams plain = small_field(GetParam());
  TrialResult reference = run_trial(ProtocolNames::kDapes, plain);
  ASSERT_GT(reference.transmissions, 0u);

  ScenarioParams wired = plain;
  wired.faults.force_wiring = true;
  TrialResult forced = run_trial(ProtocolNames::kDapes, wired);
  expect_equal(reference, forced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

TEST(Faults, ChurnTrialIdenticalGridVsBrute) {
  for (uint64_t seed : {1ull, 5ull, 9ull}) {
    SCOPED_TRACE(seed);
    ScenarioParams p = churny_field(seed);
    TrialResult grid = run_trial(ProtocolNames::kDapes, p);
    // Churn must actually bite for the comparison to mean anything.
    ASSERT_GT(grid.transmissions, 0u);
    ScenarioParams q = p;
    q.brute_force_medium = true;
    TrialResult brute = run_trial(ProtocolNames::kDapes, q);
    expect_equal(grid, brute);
  }
}

TEST(Faults, ChurnTrialIdenticalAcrossTrialThreads) {
  for (uint64_t seed : {2ull, 7ull}) {
    SCOPED_TRACE(seed);
    ScenarioParams p = churny_field(seed);
    TrialResult serial = run_trial(ProtocolNames::kDapes, p);
    ASSERT_GT(serial.transmissions, 0u);
    for (int lanes : {1, 2, 4}) {
      SCOPED_TRACE(lanes);
      ScenarioParams q = p;
      q.trial_threads = lanes;
      TrialResult parallel = run_trial(ProtocolNames::kDapes, q);
      expect_equal(serial, parallel);
    }
  }
}

TEST(Faults, ChurnTrialsIdenticalAcrossJobs) {
  ScenarioParams p = churny_field(3);
  const int trials = 4;
  auto a = TrialRunner(1).run(ProtocolNames::kChurnSwarm, p, trials);
  auto b = TrialRunner(8).run(ProtocolNames::kChurnSwarm, p, trials);
  ASSERT_EQ(a.size(), b.size());
  for (int t = 0; t < trials; ++t) {
    SCOPED_TRACE(t);
    expect_equal(a[t], b[t]);
  }
}

TEST(Faults, AdversariesNeverStallHonestSwarm) {
  // Liars only: no departures, just 25% of the initial downloaders
  // advertising everything and serving nothing. With stale-claim
  // demotion on, every honest downloader still completes.
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE(seed);
    ScenarioParams p = small_field(seed);
    p.faults.adversarial_fraction = 0.25;
    p.peer.knowledge_ttl = p.peer.neighbor_ttl * 2;
    p.peer.stale_retry_limit = 3;
    TrialResult r = run_trial(ProtocolNames::kDapes, p);
    EXPECT_DOUBLE_EQ(r.completion_fraction, 1.0) << "honest swarm stalled";
  }
}

TEST(Faults, SeederDepartureAfterSeedingStillCompletes) {
  // The producer retires late; by then the swarm holds enough replicas
  // to finish from peer stores alone (graceful degradation, not
  // collapse). A departure at t=0 would be a starvation test instead.
  ScenarioParams p = small_field(4);
  p.faults.seeder_departure_s = 200.0;
  TrialResult r = run_trial(ProtocolNames::kDapes, p);
  EXPECT_GT(r.completion_fraction, 0.0);
}

// --- Lifecycle tracing -----------------------------------------------

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("dapes_faults_test_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Faults, LifecycleEventsLandInTrace) {
  TempDir dir("lifecycle");
  ScenarioParams p = churny_field(6);
  p.trace.sink = "file";
  p.trace.path = (dir.path / "churn").string();
  run_trial(ProtocolNames::kDapes, p);

  const trace::TraceData t =
      trace::read_trace_file((dir.path / "churn").string());
  ASSERT_FALSE(t.records.empty());

  std::map<uint16_t, size_t> by_type;
  size_t setup_joins = 0;
  for (const auto& r : t.records) {
    ++by_type[r.type];
    if (r.type == static_cast<uint16_t>(trace::EventType::kNodeJoin) &&
        r.narg >= 1 && r.args[0] == 0) {
      ++setup_joins;
    }
  }
  const auto count = [&](trace::EventType type) {
    auto it = by_type.find(static_cast<uint16_t>(type));
    return it == by_type.end() ? size_t{0} : it->second;
  };
  // Every initially-alive node traces a setup join (arg0 = 0); latent
  // nodes do not until admitted (arg0 = 1).
  const size_t initial = static_cast<size_t>(
      p.stationary_downloaders + p.mobile_downloaders + p.pure_forwarders +
      p.dapes_intermediates);
  EXPECT_EQ(setup_joins, initial);
  EXPECT_GT(count(trace::EventType::kNodeJoin), setup_joins);
  EXPECT_GT(count(trace::EventType::kNodeLeave), 0u);
  EXPECT_GT(count(trace::EventType::kFaultInject), 0u);
  EXPECT_GT(count(trace::EventType::kPeerLied), 0u);
  // Every lifecycle apply is announced by a fault.inject record.
  EXPECT_GE(count(trace::EventType::kFaultInject),
            count(trace::EventType::kNodeLeave));
}

TEST(Faults, ChurnTraceByteIdenticalAcrossTrialThreads) {
  TempDir dir("lanes");
  ScenarioParams p = churny_field(8);
  p.trace.sink = "file";

  p.trial_threads = 0;
  p.trace.path = (dir.path / "t0").string();
  run_trial(ProtocolNames::kDapes, p);

  p.trial_threads = 4;
  p.trace.path = (dir.path / "t4").string();
  run_trial(ProtocolNames::kDapes, p);

  const std::string serial = slurp(dir.path / "t0");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(dir.path / "t4"));
}

}  // namespace
}  // namespace dapes::harness
