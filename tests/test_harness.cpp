// Tests for the experiment harness: metric aggregation and end-to-end
// trials (DAPES, Bithoc, Ekta, real-world scenarios) at a tiny scale.
#include <gtest/gtest.h>

#include "harness/metrics.hpp"
#include "harness/realworld.hpp"
#include "harness/scenario.hpp"

namespace dapes::harness {
namespace {

TEST(Percentile, InterpolatesAndBounds) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
  EXPECT_DOUBLE_EQ(percentile(v, 90), 37.0);
}

TEST(Percentile, SingleValueAndEmpty) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 90), 7.0);
  EXPECT_DOUBLE_EQ(percentile({}, 90), 0.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 50), 20);
}

ScenarioParams tiny_params() {
  ScenarioParams p;
  p.files = 2;
  p.file_size_bytes = 4 * 1024;
  p.mobile_downloaders = 6;
  p.stationary_downloaders = 2;
  p.pure_forwarders = 2;
  p.dapes_intermediates = 2;
  p.wifi_range_m = 80.0;
  p.data_rate_bps = 11e6;
  p.sim_limit_s = 600.0;
  p.seed = 3;
  return p;
}

TEST(Scenario, DapesTrialCompletes) {
  TrialResult r = run_dapes_trial(tiny_params());
  EXPECT_GT(r.completion_fraction, 0.9);
  EXPECT_GT(r.transmissions, 0u);
  EXPECT_LT(r.download_time_s, 600.0);
  EXPECT_GT(r.tx_by_kind.count("ndn-interest"), 0u);
}

TEST(Scenario, DapesTrialDeterministicForSeed) {
  TrialResult a = run_dapes_trial(tiny_params());
  TrialResult b = run_dapes_trial(tiny_params());
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
}

TEST(Scenario, BithocTrialCompletes) {
  TrialResult r = run_bithoc_trial(tiny_params());
  EXPECT_GT(r.completion_fraction, 0.9);
  EXPECT_GT(r.tx_by_kind.count("bithoc-hello"), 0u);
  EXPECT_GT(r.tx_by_kind.count("dsdv-update"), 0u);
}

TEST(Scenario, EktaTrialCompletes) {
  TrialResult r = run_ekta_trial(tiny_params());
  EXPECT_GT(r.completion_fraction, 0.9);
}

TEST(Scenario, DapesBeatsBaselinesOnOverhead) {
  // The paper's headline (Fig. 10b), checked at reduced scale.
  TrialResult dapes = run_dapes_trial(tiny_params());
  TrialResult bithoc = run_bithoc_trial(tiny_params());
  EXPECT_LT(dapes.transmissions, bithoc.transmissions);
}

TEST(Scenario, ChannelDefaultsAreInert) {
  // Paper-sweep proxy at tiny scale (the real fig9b/table1 runs are the
  // same code path at larger n): the default-knob trial is pinned to
  // golden values captured from the seed tree, so no future channel
  // knob can silently leak into the paper sweeps. If this fails while
  // the channel suites pass, a new ChannelParams field changed behavior
  // at its default value — that is a bug in the new knob, not here.
  TrialResult r = run_dapes_trial(tiny_params());
  EXPECT_EQ(r.transmissions, 720u);
  EXPECT_EQ(r.events_executed, 2626u);
  EXPECT_DOUBLE_EQ(r.download_time_s, 20.382561571428571);
  EXPECT_DOUBLE_EQ(r.completion_fraction, 1.0);

  // And spelling out every channel knob at its documented default must
  // be indistinguishable from an untouched ChannelParams — the knobs'
  // "off" values really are off.
  ScenarioParams p = tiny_params();
  sim::ChannelParams& c = p.channel;
  c.model = "unit-disk";
  c.capture_ratio = 0.7;
  c.path_loss_exponent = 3.0;
  c.shadowing_sigma_db = 0.0;
  c.shadowing_corr_m = 0.0;
  c.softness_db = 2.0;
  c.capture_threshold_db = 6.0;
  c.preamble_us = 192.0;
  c.ge_bad_fraction = 0.0;
  c.ge_mean_burst_ms = 200.0;
  c.ge_bad_loss = 1.0;
  c.ge_good_loss = 0.0;
  c.ge_slot_ms = 10.0;
  c.fading = "none";
  c.rician_k = 4.0;
  c.adaptive_rate = false;
  c.rate_tiers = 4;
  c.rate_sir_full_db = 10.0;
  c.rate_step_db = 5.0;
  c.link_seed = 0;
  TrialResult spelled = run_dapes_trial(p);
  EXPECT_EQ(spelled.transmissions, r.transmissions);
  EXPECT_EQ(spelled.events_executed, r.events_executed);
  EXPECT_DOUBLE_EQ(spelled.download_time_s, r.download_time_s);
}

TEST(RealWorld, DefaultKnobsMatchSeedTreeGoldens) {
  // Table I's scenario runner under default knobs, same pin as above.
  RealWorldParams params;
  params.files = 2;
  params.file_size_bytes = 8 * 1024;
  params.seed = 5;
  RealWorldResult r = run_realworld_scenario(1, params);
  EXPECT_EQ(r.transmissions, 1101u);
  EXPECT_DOUBLE_EQ(r.download_time_s, 335.49570699999998);
  EXPECT_EQ(r.system_calls, 5160u);
}

TEST(Scenario, MultiTrialSeedsVary) {
  auto results = run_dapes_trials(tiny_params(), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].transmissions, results[1].transmissions);
}

TEST(RealWorld, AllScenariosComplete) {
  for (int s = 1; s <= 3; ++s) {
    RealWorldParams params;
    params.files = 2;
    params.file_size_bytes = 8 * 1024;
    params.seed = 5;
    RealWorldResult r = run_realworld_scenario(s, params);
    EXPECT_DOUBLE_EQ(r.completion_fraction, 1.0) << "scenario " << s;
    EXPECT_GT(r.transmissions, 0u);
    EXPECT_GT(r.memory_overhead_mb, 0.0);
    EXPECT_GT(r.system_calls, 0u);
  }
}

TEST(RealWorld, CarrierSlowerThanMovingNodes) {
  // Table I's qualitative claim at reduced scale.
  RealWorldParams params;
  params.files = 2;
  params.file_size_bytes = 8 * 1024;
  params.seed = 5;
  RealWorldResult s1 = run_realworld_scenario(1, params);
  RealWorldResult s3 = run_realworld_scenario(3, params);
  EXPECT_GT(s1.download_time_s, s3.download_time_s);
}

TEST(RealWorld, RejectsBadScenario) {
  RealWorldParams params;
  EXPECT_THROW(run_realworld_scenario(0, params), std::invalid_argument);
  EXPECT_THROW(run_realworld_scenario(4, params), std::invalid_argument);
}

}  // namespace
}  // namespace dapes::harness
