// Unit tests for NDN names.
#include <gtest/gtest.h>

#include <unordered_set>

#include "ndn/name.hpp"

namespace dapes::ndn {
namespace {

TEST(Name, ParseAndPrint) {
  Name n("/damaged-bridge-1533783192/bridge-picture/0");
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0].to_string(), "damaged-bridge-1533783192");
  EXPECT_EQ(n[1].to_string(), "bridge-picture");
  EXPECT_EQ(n[2].to_string(), "0");
  EXPECT_EQ(n.to_uri(), "/damaged-bridge-1533783192/bridge-picture/0");
}

TEST(Name, EmptyForms) {
  EXPECT_TRUE(Name("").empty());
  EXPECT_TRUE(Name("/").empty());
  EXPECT_EQ(Name("").to_uri(), "/");
}

TEST(Name, SkipsEmptyComponents) {
  Name n("//a///b/");
  EXPECT_EQ(n.size(), 2u);
  EXPECT_EQ(n.to_uri(), "/a/b");
}

TEST(Name, InitializerList) {
  Name n{"a", "b", "c"};
  EXPECT_EQ(n.to_uri(), "/a/b/c");
}

TEST(Name, AppendChaining) {
  Name n;
  n.append("coll").append("file").append_number(42);
  EXPECT_EQ(n.to_uri(), "/coll/file/42");
  EXPECT_EQ(n[2].to_number(), 42u);
}

TEST(Name, AppendedDoesNotMutate) {
  Name base("/a");
  Name longer = base.appended("b");
  EXPECT_EQ(base.to_uri(), "/a");
  EXPECT_EQ(longer.to_uri(), "/a/b");
  EXPECT_EQ(base.appended_number(7).to_uri(), "/a/7");
}

TEST(Name, NumberParsing) {
  EXPECT_EQ(Component("123").to_number(), 123u);
  EXPECT_EQ(Component("0").to_number(), 0u);
  EXPECT_FALSE(Component("12a").to_number().has_value());
  EXPECT_FALSE(Component("").to_number().has_value());
  EXPECT_FALSE(Component("picture").to_number().has_value());
}

TEST(Name, PrefixOperations) {
  Name n("/a/b/c/d");
  EXPECT_EQ(n.prefix(2).to_uri(), "/a/b");
  EXPECT_EQ(n.prefix(0).to_uri(), "/");
  EXPECT_EQ(n.prefix(99).to_uri(), "/a/b/c/d");  // clamped
  EXPECT_EQ(n.get_prefix_dropping().to_uri(), "/a/b/c");
  EXPECT_EQ(n.get_prefix_dropping(3).to_uri(), "/a");
  EXPECT_EQ(n.get_prefix_dropping(99).to_uri(), "/");
}

TEST(Name, IsPrefixOf) {
  Name root("/a/b");
  EXPECT_TRUE(root.is_prefix_of(Name("/a/b")));
  EXPECT_TRUE(root.is_prefix_of(Name("/a/b/c")));
  EXPECT_FALSE(root.is_prefix_of(Name("/a")));
  EXPECT_FALSE(root.is_prefix_of(Name("/a/c/b")));
  EXPECT_TRUE(Name("").is_prefix_of(root));
  // "ab" is not a component-wise prefix of "abc".
  EXPECT_FALSE(Name("/ab").is_prefix_of(Name("/abc")));
}

TEST(Name, OrderingIsComponentWise) {
  EXPECT_LT(Name("/a"), Name("/a/b"));
  EXPECT_LT(Name("/a/b"), Name("/b"));
  // Map iteration groups names under their prefix.
  std::vector<Name> names = {Name("/b"), Name("/a/z"), Name("/a"), Name("/a/b")};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names[0].to_uri(), "/a");
  EXPECT_EQ(names[1].to_uri(), "/a/b");
  EXPECT_EQ(names[2].to_uri(), "/a/z");
  EXPECT_EQ(names[3].to_uri(), "/b");
}

TEST(Name, HashConsistentWithEquality) {
  std::hash<Name> h;
  EXPECT_EQ(h(Name("/a/b/c")), h(Name("/a/b/c")));
  EXPECT_NE(h(Name("/a/b/c")), h(Name("/a/b/d")));
  // Component boundaries matter: /ab/c vs /a/bc.
  EXPECT_NE(h(Name("/ab/c")), h(Name("/a/bc")));
  std::unordered_set<Name> set;
  set.insert(Name("/x"));
  set.insert(Name("/x"));
  EXPECT_EQ(set.size(), 1u);
}

TEST(Name, ComponentComparison) {
  EXPECT_EQ(Component("abc"), Component("abc"));
  EXPECT_NE(Component("abc"), Component("abd"));
  EXPECT_LT(Component("abc"), Component("abd"));
}

// ------------------------------------------------------ hash cache

// Reference FNV-1a matching the documented scheme, computed from scratch.
size_t reference_hash(const Name& name) {
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  for (const auto& c : name.components()) {
    mix(0xff);
    for (uint8_t b : c.value()) mix(b);
  }
  return h;
}

TEST(NameHash, MatchesReferenceScheme) {
  for (const char* uri : {"/", "/a", "/a/b/c", "/coll/file/123"}) {
    Name n = Name(uri);
    EXPECT_EQ(n.hash(), reference_hash(n)) << uri;
    EXPECT_EQ(std::hash<Name>{}(n), n.hash());
  }
}

TEST(NameHash, PrefixHashesMatchPrefixNames) {
  Name n("/damaged-bridge/bridge-picture/0/extra");
  for (size_t d = 0; d <= n.size(); ++d) {
    EXPECT_EQ(n.prefix_hash(d), n.prefix(d).hash()) << d;
  }
  // Clamped like prefix().
  EXPECT_EQ(n.prefix_hash(99), n.hash());
}

TEST(NameHash, AppendExtendsWarmCacheCorrectly) {
  Name n("/a/b");
  EXPECT_FALSE(n.has_hash_cache());
  (void)n.hash();  // warm
  ASSERT_TRUE(n.has_hash_cache());
  n.append("c");
  ASSERT_TRUE(n.has_hash_cache());  // extended in place, not dropped
  EXPECT_EQ(n.hash(), Name("/a/b/c").hash());
  n.append_number(7);
  EXPECT_EQ(n.hash(), Name("/a/b/c/7").hash());
  EXPECT_EQ(n.hash(), reference_hash(n));
}

TEST(NameHash, MutationOfColdNameStaysCorrect) {
  // Appending without a warm cache: first hash() after the mutation must
  // see the final components.
  Name n("/a");
  n.append("b");
  EXPECT_EQ(n.hash(), Name("/a/b").hash());
  EXPECT_EQ(n.hash(), reference_hash(n));
}

TEST(NameHash, PrefixInheritsCache) {
  Name n("/x/y/z");
  (void)n.hash();
  Name p = n.prefix(2);
  EXPECT_TRUE(p.has_hash_cache());
  EXPECT_EQ(p.hash(), Name("/x/y").hash());
  // A cold name's prefix is cold but still hashes correctly.
  Name cold("/x/y/z");
  EXPECT_FALSE(cold.prefix(2).has_hash_cache());
  EXPECT_EQ(cold.prefix(2).hash(), p.hash());
}

TEST(NameHash, CacheStateInvisibleToComparison) {
  Name warm("/k/l");
  (void)warm.hash();
  Name cold("/k/l");
  EXPECT_EQ(warm, cold);
  EXPECT_FALSE(warm < cold);
  EXPECT_FALSE(cold < warm);
  EXPECT_EQ(std::hash<Name>{}(warm), std::hash<Name>{}(cold));
}

TEST(NameHash, ComponentBoundariesStillDistinct) {
  EXPECT_NE(Name("/ab/c").hash(), Name("/a/bc").hash());
  EXPECT_NE(Name("/a/b/c").hash(), Name("/a/b/d").hash());
}

}  // namespace
}  // namespace dapes::ndn
