// The event-trace subsystem's contracts (DESIGN.md "Event trace
// architecture"):
//
//   * Binary round-trip — varints and whole DTRC traces encode/decode
//     losslessly, on randomized inputs.
//   * Bounded memory — the ring sink holds at most ring_capacity records
//     per slot, drops oldest-first, and counts every drop.
//   * Disabled guard — with no sink configured nothing is emitted, no
//     tracer is installed, and a traced trial's deterministic TrialResult
//     is bit-identical to the untraced one.
//   * Trace identity — the merged trace file is byte-identical across
//     --jobs 1 vs 8 and --trial-threads 1 vs 4, multi-seed (the contract
//     the CI smoke also byte-diffs at bench scale).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/driver.hpp"
#include "harness/scale.hpp"
#include "harness/trial_runner.hpp"
#include "ndn/name.hpp"
#include "trace/format.hpp"
#include "trace/query.hpp"
#include "trace/trace.hpp"

namespace dapes::trace {
namespace {

// ---------------------------------------------------------------- varints

TEST(TraceVarint, RoundTripBoundaryValues) {
  const std::vector<uint64_t> values = {
      0,       1,          0x7f,        0x80,       0x3fff,
      0x4000,  0x1fffff,   0x200000,    0xffffffff, 0x100000000ull,
      UINT64_MAX - 1,      UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) put_varint(buf, v);
  size_t pos = 0;
  for (uint64_t v : values) EXPECT_EQ(get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(TraceVarint, RoundTripRandom) {
  common::Rng rng(7);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    // Spread across magnitudes: mask a full draw down to 1..64 bits.
    const int bits = 1 + static_cast<int>(rng.next_below(64));
    uint64_t v = rng.next();
    if (bits < 64) v &= (1ull << bits) - 1;
    values.push_back(v);
    put_varint(buf, v);
  }
  size_t pos = 0;
  for (uint64_t v : values) EXPECT_EQ(get_varint(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(TraceVarint, TruncationThrows) {
  std::string buf;
  put_varint(buf, 0x4000);  // two-plus bytes
  buf.pop_back();
  size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), std::runtime_error);
}

// ---------------------------------------------------- trace encode/decode

TraceData random_trace(uint64_t seed) {
  common::Rng rng(seed);
  TraceData t;
  const auto& reg = EventTypeRegistry::get();
  for (size_t i = 0; i < kEventTypeCount; ++i) {
    t.types.emplace_back(static_cast<uint16_t>(i),
                         std::string(reg.name(static_cast<EventType>(i))));
  }
  const size_t n_names = 1 + static_cast<size_t>(rng.next_below(16));
  for (size_t i = 0; i < n_names; ++i) {
    // Hashes must be unique and sorted ascending, as the writer emits.
    t.names.emplace_back((i + 1) * 1000 + rng.next_below(999),
                         "/t/" + std::to_string(i));
  }
  int64_t now = 0;
  const size_t n_records = static_cast<size_t>(rng.next_below(300));
  for (size_t i = 0; i < n_records; ++i) {
    Record r;
    now += static_cast<int64_t>(rng.next_below(5000));  // nondecreasing
    r.t_us = now;
    r.node = rng.next_below(10) == 0
                 ? kNoNode
                 : static_cast<uint32_t>(rng.next_below(64));
    r.type = static_cast<uint16_t>(rng.next_below(kEventTypeCount));
    r.name_hash =
        rng.next_below(2) == 0 ? 0 : t.names[rng.next_below(n_names)].first;
    r.narg = static_cast<uint16_t>(rng.next_below(4));
    for (uint16_t a = 0; a < r.narg; ++a) r.args[a] = rng.next();
    t.records.push_back(r);
  }
  const size_t n_slots = 1 + static_cast<size_t>(rng.next_below(8));
  for (size_t i = 0; i < n_slots; ++i) {
    t.dropped_per_slot.push_back(rng.next_below(100));
  }
  t.total_emitted = t.records.size() + t.total_dropped();
  return t;
}

TEST(TraceFormat, RoundTripRandomTraces) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const TraceData t = random_trace(seed);
    const std::string bytes = encode_trace(t);
    const TraceData back = decode_trace(bytes);
    ASSERT_EQ(back.records.size(), t.records.size()) << "seed " << seed;
    for (size_t i = 0; i < t.records.size(); ++i) {
      EXPECT_EQ(back.records[i], t.records[i]) << "seed " << seed;
    }
    EXPECT_EQ(back.names, t.names) << "seed " << seed;
    EXPECT_EQ(back.types, t.types) << "seed " << seed;
    EXPECT_EQ(back.dropped_per_slot, t.dropped_per_slot) << "seed " << seed;
    EXPECT_EQ(back.total_emitted, t.total_emitted) << "seed " << seed;
    // Determinism: re-encoding the decoded trace is byte-identical.
    EXPECT_EQ(encode_trace(back), bytes) << "seed " << seed;
  }
}

TEST(TraceFormat, RejectsCorruptInput) {
  const TraceData t = random_trace(3);
  std::string bytes = encode_trace(t);
  EXPECT_THROW(decode_trace(std::string("XXXX") + bytes.substr(4)),
               std::runtime_error);
  EXPECT_THROW(decode_trace(bytes.substr(0, bytes.size() / 2)),
               std::runtime_error);
  EXPECT_THROW(decode_trace(std::string()), std::runtime_error);
}

// -------------------------------------------------------- tracer + sinks

TEST(Tracer, RingSinkBoundsMemoryAndCountsDrops) {
  TraceConfig config;
  config.sink = "ring";
  config.ring_capacity = 16;
  int64_t now = 0;
  Tracer tracer(config, [&now] { return now; });
  TrialScope scope(&tracer);

  tracer.ensure_node(0);
  const uint64_t total = 100;
  for (uint64_t i = 0; i < total; ++i) {
    now = static_cast<int64_t>(i);
    NodeScope node(0);
    DAPES_TRACE_HERE(EventType::kSchedFire, i);
  }
  EXPECT_EQ(tracer.emitted(), total);
  EXPECT_EQ(tracer.held(), 16u);
  EXPECT_EQ(tracer.dropped(), total - 16);

  // The survivors are the newest 16, in emission order.
  const TraceData t = tracer.snapshot();
  ASSERT_EQ(t.records.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(t.records[i].t_us, static_cast<int64_t>(total - 16 + i));
    EXPECT_EQ(t.records[i].args[0], total - 16 + i);
  }
  EXPECT_EQ(t.total_emitted, total);
  EXPECT_EQ(t.total_dropped(), total - 16);
}

TEST(Tracer, PerSlotRingsAreIndependent) {
  TraceConfig config;
  config.sink = "ring";
  config.ring_capacity = 8;
  int64_t now = 0;
  Tracer tracer(config, [&now] { return now; });
  TrialScope scope(&tracer);
  tracer.ensure_node(0);
  tracer.ensure_node(1);

  for (uint64_t i = 0; i < 50; ++i) {
    NodeScope node(0);
    DAPES_TRACE_HERE(EventType::kSchedFire);
  }
  {
    NodeScope node(1);
    DAPES_TRACE_HERE(EventType::kSchedCancel);
  }
  // Node 0 overflowed its ring; node 1's single record must survive.
  const TraceData t = tracer.snapshot();
  size_t node1 = 0;
  for (const Record& r : t.records) node1 += r.node == 1 ? 1 : 0;
  EXPECT_EQ(node1, 1u);
  EXPECT_EQ(tracer.held(), 9u);
  EXPECT_EQ(tracer.dropped(), 42u);
}

TEST(Tracer, CanonicalMergeOrdersByTimeThenSlot) {
  TraceConfig config;
  config.sink = "ring";
  int64_t now = 0;
  Tracer tracer(config, [&now] { return now; });
  TrialScope scope(&tracer);
  tracer.ensure_node(0);
  tracer.ensure_node(1);

  // Same-instant emissions from node 1, node 0, then unattributed: the
  // merge must order them (slot 0, slot 1, slot 2) = (none, n0, n1).
  now = 5;
  {
    NodeScope node(1);
    DAPES_TRACE_HERE(EventType::kSchedFire);
  }
  {
    NodeScope node(0);
    DAPES_TRACE_HERE(EventType::kSchedFire);
  }
  DAPES_TRACE_HERE(EventType::kSchedFire);  // no scope -> slot 0
  now = 2;  // an earlier timestamp emitted later still sorts first
  {
    NodeScope node(1);
    DAPES_TRACE_HERE(EventType::kSchedCancel);
  }

  const TraceData t = tracer.snapshot();
  ASSERT_EQ(t.records.size(), 4u);
  EXPECT_EQ(t.records[0].t_us, 2);
  EXPECT_EQ(t.records[0].node, 1u);
  EXPECT_EQ(t.records[1].t_us, 5);
  EXPECT_EQ(t.records[1].node, kNoNode);
  EXPECT_EQ(t.records[2].node, 0u);
  EXPECT_EQ(t.records[3].node, 1u);
}

TEST(Tracer, NamedEmissionsBuildTheDictionary) {
  TraceConfig config;
  config.sink = "ring";
  Tracer tracer(config, [] { return int64_t{0}; });
  TrialScope scope(&tracer);
  tracer.ensure_node(0);

  const ndn::Name name("/dapes/discovery");
  {
    NodeScope node(0);
    DAPES_TRACE_NAMED(EventType::kPitInsert, name);
    DAPES_TRACE_NAMED(EventType::kPitSatisfy, name);
  }
  const TraceData t = tracer.snapshot();
  ASSERT_EQ(t.records.size(), 2u);
  ASSERT_EQ(t.names.size(), 1u);  // one name, learned once
  EXPECT_EQ(t.names[0].first, name.hash());
  EXPECT_EQ(t.names[0].second, name.to_uri());
  EXPECT_EQ(t.records[0].name_hash, name.hash());
  ASSERT_NE(t.name_of(name.hash()), nullptr);
  EXPECT_EQ(*t.name_of(name.hash()), name.to_uri());
}

TEST(Tracer, UnknownSinkNameThrows) {
  TraceConfig config;
  config.sink = "bogus";
  EXPECT_THROW(Tracer(config, [] { return int64_t{0}; }),
               std::invalid_argument);
}

TEST(Tracer, FileSinkRequiresPath) {
  TraceConfig config;
  config.sink = "file";
  EXPECT_THROW(Tracer(config, [] { return int64_t{0}; }),
               std::invalid_argument);
}

// ------------------------------------------------------- disabled guard

TEST(TraceGuard, NothingRunsWhenDisabled) {
  ASSERT_EQ(active(), nullptr);
  // Every macro must be inert without an installed tracer.
  DAPES_TRACE_EVENT(EventType::kMediumTx, 1, 2, 3);
  DAPES_TRACE_HERE(EventType::kSchedFire);
  DAPES_TRACE_NAMED(EventType::kPitInsert, ndn::Name("/x"));
  // NodeScope must not arm (and must not touch the context).
  {
    NodeScope node(4);
    EXPECT_EQ(context_node(), kNoNode);
  }
  SUCCEED();
}

TEST(TraceGuard, NoNodeScopeKeepsCurrentContext) {
  TraceConfig config;
  config.sink = "null";
  Tracer tracer(config, [] { return int64_t{0}; });
  TrialScope scope(&tracer);
  NodeScope outer(7);
  EXPECT_EQ(context_node(), 7u);
  {
    // An unbound forwarder's scope must not clobber the receiver scope.
    NodeScope inner(kNoNode);
    EXPECT_EQ(context_node(), 7u);
  }
  EXPECT_EQ(context_node(), 7u);
}

}  // namespace
}  // namespace dapes::trace

namespace dapes::harness {
namespace {

using trace::TraceData;

ScenarioParams tiny_field(uint64_t seed) {
  ScenarioParams p;
  p.files = 1;
  p.file_size_bytes = 8 * 1024;
  p.mobile_downloaders = 6;
  p.stationary_downloaders = 2;
  p.pure_forwarders = 2;
  p.dapes_intermediates = 2;
  p.wifi_range_m = 80.0;
  p.data_rate_bps = 11e6;
  p.sim_limit_s = 200.0;
  p.seed = seed;
  return p;
}

void expect_deterministic_equal(const TrialResult& a, const TrialResult& b) {
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
  EXPECT_DOUBLE_EQ(a.completion_fraction, b.completion_fraction);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collided_frames, b.collided_frames);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.peak_state_bytes, b.peak_state_bytes);
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// A scoped temp directory for trace files.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("dapes_trace_test_" + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(TraceTrial, TracingDoesNotPerturbResults) {
  const ScenarioParams base = tiny_field(11);
  const TrialResult untraced = run_trial(ProtocolNames::kScaleField, base);

  ScenarioParams traced = base;
  traced.trace.sink = "null";
  const TrialResult with_null = run_trial(ProtocolNames::kScaleField, traced);
  expect_deterministic_equal(untraced, with_null);

  TempDir dir("perturb");
  traced.trace.sink = "file";
  traced.trace.path = (dir.path / "tr").string();
  const TrialResult with_file = run_trial(ProtocolNames::kScaleField, traced);
  expect_deterministic_equal(untraced, with_file);
  EXPECT_TRUE(std::filesystem::exists(dir.path / "tr"));
}

TEST(TraceTrial, TraceFileIdenticalAcrossJobs) {
  // Multi-seed: each seed's per-trial trace must be byte-identical
  // between a serial and an 8-thread TrialRunner fan-out.
  TempDir dir("jobs");
  const int trials = 3;
  for (uint64_t seed : {1ull, 2ull}) {
    ScenarioParams p = tiny_field(seed);
    p.trace.sink = "file";

    p.trace.path = (dir.path / ("j1_s" + std::to_string(seed))).string();
    TrialRunner(1).run(ProtocolNames::kScaleField, p, trials);

    p.trace.path = (dir.path / ("j8_s" + std::to_string(seed))).string();
    TrialRunner(8).run(ProtocolNames::kScaleField, p, trials);

    for (int t = 0; t < trials; ++t) {
      const std::string suffix = ".t" + std::to_string(t);
      const std::string a =
          slurp(dir.path / ("j1_s" + std::to_string(seed) + suffix));
      const std::string b =
          slurp(dir.path / ("j8_s" + std::to_string(seed) + suffix));
      ASSERT_FALSE(a.empty());
      EXPECT_EQ(a, b) << "seed " << seed << " trial " << t;
    }
  }
}

TEST(TraceTrial, TraceFileIdenticalAcrossTrialThreads) {
  // The phase-parallel engine must emit the same canonical trace as the
  // serial event loop, multi-seed.
  TempDir dir("lanes");
  for (uint64_t seed : {3ull, 4ull}) {
    ScenarioParams p = tiny_field(seed);
    p.trace.sink = "file";

    p.trial_threads = 1;
    p.trace.path = (dir.path / ("t1_s" + std::to_string(seed))).string();
    run_trial(ProtocolNames::kScaleField, p);

    p.trial_threads = 4;
    p.trace.path = (dir.path / ("t4_s" + std::to_string(seed))).string();
    run_trial(ProtocolNames::kScaleField, p);

    p.trial_threads = 0;  // plain serial loop
    p.trace.path = (dir.path / ("t0_s" + std::to_string(seed))).string();
    run_trial(ProtocolNames::kScaleField, p);

    const std::string serial =
        slurp(dir.path / ("t0_s" + std::to_string(seed)));
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, slurp(dir.path / ("t1_s" + std::to_string(seed))))
        << "seed " << seed;
    EXPECT_EQ(serial, slurp(dir.path / ("t4_s" + std::to_string(seed))))
        << "seed " << seed;
  }
}

TEST(TraceTrial, QueryToolsReadTrialTraces) {
  TempDir dir("query");
  ScenarioParams p = tiny_field(5);
  p.trace.sink = "file";
  p.trace.path = (dir.path / "tr").string();
  run_trial(ProtocolNames::kScaleField, p);

  const TraceData t = trace::read_trace_file((dir.path / "tr").string());
  ASSERT_FALSE(t.records.empty());

  const trace::TraceStats stats = trace::compute_stats(t);
  EXPECT_EQ(stats.records, t.records.size());
  EXPECT_GT(stats.nodes_seen, 0u);
  EXPECT_FALSE(stats.by_type.empty());

  // Diff against itself: identical. Against a truncated copy: divergent
  // at the truncation point.
  const trace::DiffResult same = trace::diff_traces(t, t);
  EXPECT_TRUE(same.identical);
  TraceData shorter = t;
  shorter.records.pop_back();
  const trace::DiffResult diff = trace::diff_traces(t, shorter);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.index, shorter.records.size());
  EXPECT_TRUE(diff.a.has_value());
  EXPECT_FALSE(diff.b.has_value());
}

}  // namespace
}  // namespace dapes::harness
