// Unit tests for WifiFace: the broadcast face's random-timer data
// suppression (paper §III) and frame codec dispatch.
#include <gtest/gtest.h>

#include "ndn/face.hpp"
#include "ndn/forwarder.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::ndn {
namespace {

using common::bytes_of;

struct WifiFaceTest : ::testing::Test {
  sim::Scheduler sched;
  sim::StationaryMobility pos_a{{0, 0}};
  sim::StationaryMobility pos_b{{10, 0}};
  common::Rng rng{17};

  sim::Medium::Params params() {
    sim::Medium::Params p;
    p.range_m = 50;
    p.loss_rate = 0.0;
    return p;
  }

  Data data(const std::string& uri) {
    Data d{Name(uri)};
    d.set_content(bytes_of("payload"));
    return d;
  }
};

TEST_F(WifiFaceTest, InterestSendsImmediately) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  medium.add_node(&pos_b, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork());
  face.send_interest(Interest(Name("/x")));
  sched.run();
  EXPECT_EQ(face.interests_sent(), 1u);
  EXPECT_EQ(medium.stats().tx_by_kind["ndn-interest"], 1u);
}

TEST_F(WifiFaceTest, DataDelayedWithinWindow) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  sim::TimePoint received_at{};
  medium.add_node(&pos_b, [&](const sim::FramePtr&, sim::NodeId) {
    received_at = sched.now();
  });
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork(),
                common::Duration::milliseconds(20));
  face.send_data(data("/d/1"));
  EXPECT_EQ(face.data_sent(), 0u);  // still pending
  sched.run();
  EXPECT_EQ(face.data_sent(), 1u);
  EXPECT_LE(received_at.us, 21000 + 10000);  // window + airtime slack
}

TEST_F(WifiFaceTest, OverheardDuplicateSuppressesPending) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  medium.add_node(&pos_b, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork(),
                common::Duration::milliseconds(20));
  face.send_data(data("/dup/1"));
  // Another node's copy of the same data arrives before our timer fires.
  auto frame = std::make_shared<sim::Frame>();
  frame->sender = 1;
  frame->payload = data("/dup/1").encode();
  frame->kind = "ndn-data";
  face.on_frame(frame);
  sched.run();
  EXPECT_EQ(face.data_sent(), 0u);
  EXPECT_EQ(face.data_suppressed(), 1u);
}

TEST_F(WifiFaceTest, DifferentNameDoesNotSuppress) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  medium.add_node(&pos_b, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork(),
                common::Duration::milliseconds(20));
  face.send_data(data("/dup/1"));
  auto frame = std::make_shared<sim::Frame>();
  frame->sender = 1;
  frame->payload = data("/dup/2").encode();
  frame->kind = "ndn-data";
  face.on_frame(frame);
  sched.run();
  EXPECT_EQ(face.data_sent(), 1u);
  EXPECT_EQ(face.data_suppressed(), 0u);
}

TEST_F(WifiFaceTest, SameNameQueuedOnce) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  medium.add_node(&pos_b, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork(),
                common::Duration::milliseconds(20));
  face.send_data(data("/once/1"));
  face.send_data(data("/once/1"));
  sched.run();
  EXPECT_EQ(face.data_sent(), 1u);
}

TEST_F(WifiFaceTest, ZeroWindowSendsImmediately) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  medium.add_node(&pos_b, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork(), common::Duration{0});
  face.send_data(data("/now/1"));
  EXPECT_EQ(face.data_sent(), 1u);
}

TEST_F(WifiFaceTest, IgnoresForeignFrames) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork());
  int delivered = 0;
  face.set_receive_handlers([&](const Interest&) { ++delivered; },
                            [&](const Data&) { ++delivered; });
  // An IP-lite frame (magic 0x45) and garbage must both be ignored.
  auto ip_frame = std::make_shared<sim::Frame>();
  ip_frame->payload = common::Bytes{0x45, 1, 2, 3};
  face.on_frame(ip_frame);
  auto junk = std::make_shared<sim::Frame>();
  junk->payload = common::Bytes{0x05, 0xff, 0xff};  // truncated interest
  face.on_frame(junk);
  auto empty = std::make_shared<sim::Frame>();
  face.on_frame(empty);
  EXPECT_EQ(delivered, 0);
}

TEST_F(WifiFaceTest, DecodesAndDeliversBothPacketTypes) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork());
  int interests = 0, datas = 0;
  face.set_receive_handlers([&](const Interest&) { ++interests; },
                            [&](const Data&) { ++datas; });
  auto iframe = std::make_shared<sim::Frame>();
  iframe->payload = Interest(Name("/i")).encode();
  face.on_frame(iframe);
  auto dframe = std::make_shared<sim::Frame>();
  dframe->payload = data("/d").encode();
  face.on_frame(dframe);
  EXPECT_EQ(interests, 1);
  EXPECT_EQ(datas, 1);
}

TEST_F(WifiFaceTest, NextInterestTxCallbackIsOneShot) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  medium.add_node(&pos_b, nullptr);
  sim::Radio radio(sched, medium, a, rng.fork());
  WifiFace face(sched, radio, a, rng.fork());
  int reports = 0;
  face.set_next_interest_tx_callback(
      [&](const sim::Medium::TxReport&) { ++reports; });
  face.send_interest(Interest(Name("/first")));
  face.send_interest(Interest(Name("/second")));
  sched.run();
  EXPECT_EQ(reports, 1);
}

}  // namespace
}  // namespace dapes::ndn
