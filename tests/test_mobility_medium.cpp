// Unit tests for mobility models, the wireless medium (range, loss,
// collisions, capture) and the CSMA radio.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/radio.hpp"

namespace dapes::sim {
namespace {

TEST(Mobility, StationaryNeverMoves) {
  StationaryMobility m({10, 20});
  EXPECT_EQ(m.position_at(TimePoint{0}), (Vec2{10, 20}));
  EXPECT_EQ(m.position_at(TimePoint{100000000}), (Vec2{10, 20}));
}

class RandomDirectionField : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDirectionField, StaysInsideField) {
  RandomDirectionMobility::Params params;
  params.field = Field{300, 300};
  RandomDirectionMobility m({150, 150}, params, common::Rng(GetParam()));
  for (int s = 0; s < 600; s += 3) {
    Vec2 p = m.position_at(TimePoint{static_cast<int64_t>(s) * 1000000});
    EXPECT_GE(p.x, -1e-6);
    EXPECT_GE(p.y, -1e-6);
    EXPECT_LE(p.x, 300 + 1e-6);
    EXPECT_LE(p.y, 300 + 1e-6);
  }
}

TEST_P(RandomDirectionField, SpeedWithinConfiguredBounds) {
  RandomDirectionMobility::Params params;
  params.field = Field{1e7, 1e7};  // effectively unbounded: no reflections
  RandomDirectionMobility m({5e6, 5e6}, params, common::Rng(GetParam()));
  for (int s = 0; s < 100; ++s) {
    Vec2 a = m.position_at(TimePoint{static_cast<int64_t>(s) * 1000000});
    Vec2 b = m.position_at(TimePoint{static_cast<int64_t>(s + 1) * 1000000});
    double speed = distance(a, b);  // meters over one second
    EXPECT_LE(speed, 10.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDirectionField,
                         ::testing::Values(1, 2, 3, 42, 99));

TEST(Mobility, RandomDirectionDeterministic) {
  RandomDirectionMobility::Params params;
  RandomDirectionMobility a({150, 150}, params, common::Rng(7));
  RandomDirectionMobility b({150, 150}, params, common::Rng(7));
  for (int s = 0; s < 100; s += 10) {
    TimePoint t{static_cast<int64_t>(s) * 1000000};
    EXPECT_EQ(a.position_at(t), b.position_at(t));
  }
}

TEST(Mobility, WaypointInterpolates) {
  WaypointMobility m({{TimePoint{0}, {0, 0}}, {TimePoint{10000000}, {10, 0}}});
  EXPECT_EQ(m.position_at(TimePoint{5000000}), (Vec2{5, 0}));
  EXPECT_EQ(m.position_at(TimePoint{0}), (Vec2{0, 0}));
  // Holds last position afterwards.
  EXPECT_EQ(m.position_at(TimePoint{99000000}), (Vec2{10, 0}));
}

TEST(Mobility, WaypointBeforeStartHoldsFirst) {
  WaypointMobility m({{TimePoint{5000000}, {3, 4}},
                      {TimePoint{10000000}, {10, 0}}});
  EXPECT_EQ(m.position_at(TimePoint{0}), (Vec2{3, 4}));
}

TEST(Mobility, WaypointRejectsEmptyAndUnsorted) {
  EXPECT_THROW(WaypointMobility{std::vector<WaypointMobility::Waypoint>{}},
               std::invalid_argument);
  EXPECT_THROW(WaypointMobility({{TimePoint{10}, {0, 0}}, {TimePoint{5}, {1, 1}}}),
               std::invalid_argument);
}

TEST(Mobility, MaxSpeedContracts) {
  StationaryMobility fixed({1, 1});
  EXPECT_EQ(fixed.max_speed(), 0.0);

  RandomDirectionMobility::Params dp;
  dp.speed_max = 7.5;
  RandomDirectionMobility dir({10, 10}, dp, common::Rng(1));
  EXPECT_EQ(dir.max_speed(), 7.5);

  // 10 m in 2 s, then 30 m in 3 s: fastest segment is 10 m/s.
  WaypointMobility wp({{TimePoint{0}, {0, 0}},
                       {TimePoint{2000000}, {10, 0}},
                       {TimePoint{5000000}, {40, 0}}});
  EXPECT_DOUBLE_EQ(wp.max_speed(), 10.0);

  // Two waypoints at the same instant but different positions: a jump.
  WaypointMobility jump({{TimePoint{0}, {0, 0}}, {TimePoint{0}, {5, 0}}});
  EXPECT_TRUE(std::isinf(jump.max_speed()));
}

// position_at must be a pure function of t: querying out of order or
// repeatedly must agree with a fresh model queried in order. This is
// what lets the grid medium read past positions at delivery time.
template <typename Make>
void expect_query_order_independent(Make make) {
  auto a = make();
  auto b = make();
  const int64_t times_us[] = {90000000, 5000000, 90000000, 42000000,
                              0,        90000000, 17000000};
  for (int64_t t : times_us) {
    Vec2 pa = a->position_at(TimePoint{t});
    // b sees the times in sorted order via a fresh scan each time.
    Vec2 pb = b->position_at(TimePoint{t});
    EXPECT_EQ(pa, pb) << "t=" << t;
  }
  // Repeat a query after the model materialized far beyond it.
  auto c = make();
  Vec2 late_first = c->position_at(TimePoint{90000000});
  EXPECT_EQ(c->position_at(TimePoint{90000000}), late_first);
  EXPECT_EQ(c->position_at(TimePoint{5000000}),
            a->position_at(TimePoint{5000000}));
}

TEST(Mobility, RandomDirectionQueryOrderIndependent) {
  expect_query_order_independent([] {
    RandomDirectionMobility::Params p;
    p.field = Field{200, 200};
    return std::make_unique<RandomDirectionMobility>(Vec2{100, 100}, p,
                                                     common::Rng(11));
  });
}

TEST(Mobility, RandomWaypointQueryOrderIndependent) {
  expect_query_order_independent([] {
    RandomWaypointMobility::Params p;
    p.field = Field{200, 200};
    return std::make_unique<RandomWaypointMobility>(Vec2{100, 100}, p,
                                                    common::Rng(11));
  });
}

class RandomWaypointField : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWaypointField, StaysInsideFieldAndRespectsSpeed) {
  RandomWaypointMobility::Params params;
  params.field = Field{250, 250};
  params.pause = Duration::seconds(1.5);
  RandomWaypointMobility m({125, 125}, params, common::Rng(GetParam()));
  Vec2 prev = m.position_at(TimePoint{0});
  for (int s = 1; s < 400; ++s) {
    Vec2 p = m.position_at(TimePoint{static_cast<int64_t>(s) * 1000000});
    EXPECT_GE(p.x, -1e-6);
    EXPECT_GE(p.y, -1e-6);
    EXPECT_LE(p.x, 250 + 1e-6);
    EXPECT_LE(p.y, 250 + 1e-6);
    // Displacement per second bounded by the configured max speed.
    EXPECT_LE(distance(prev, p), params.speed_max + 1e-6);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWaypointField,
                         ::testing::Values(1, 2, 3, 42, 99));

TEST(Mobility, RandomWaypointPausesAtTargets) {
  RandomWaypointMobility::Params params;
  params.field = Field{100, 100};
  params.pause = Duration::seconds(5.0);
  RandomWaypointMobility m({50, 50}, params, common::Rng(3));
  // With a 5 s pause after every leg, there must be 100 ms windows where
  // the node does not move at all; with max speed 10 m/s a moving node
  // covers ~1 m per window, so paused windows are exactly stationary.
  int stationary_windows = 0;
  Vec2 prev = m.position_at(TimePoint{0});
  for (int i = 1; i < 3000; ++i) {
    Vec2 p = m.position_at(TimePoint{static_cast<int64_t>(i) * 100000});
    if (p == prev) ++stationary_windows;
    prev = p;
  }
  EXPECT_GT(stationary_windows, 50);
}

TEST(Mobility, RandomWaypointRejectsBadParams) {
  RandomWaypointMobility::Params bad_speed;
  bad_speed.speed_min = 0.0;
  EXPECT_THROW(RandomWaypointMobility({0, 0}, bad_speed, common::Rng(1)),
               std::invalid_argument);
  RandomWaypointMobility::Params bad_pause;
  bad_pause.pause = Duration::seconds(-1.0);
  EXPECT_THROW(RandomWaypointMobility({0, 0}, bad_pause, common::Rng(1)),
               std::invalid_argument);
}

TEST(Mobility, GroupMembersTrackAnchorWithinField) {
  const Field field{300, 300};
  RandomWaypointMobility::Params ap;
  ap.field = field;
  auto anchor = std::make_shared<RandomWaypointMobility>(Vec2{150, 150}, ap,
                                                         common::Rng(7));
  GroupMobility member_a(anchor, {12, -8}, field);
  GroupMobility member_b(anchor, {-20, 15}, field);
  for (int s = 0; s < 300; s += 5) {
    TimePoint t{static_cast<int64_t>(s) * 1000000};
    Vec2 ap_pos = anchor->position_at(t);
    Vec2 a = member_a.position_at(t);
    Vec2 b = member_b.position_at(t);
    // Members are the clamped anchor + offset, so they stay in the field
    // and within the offset radius of the anchor.
    EXPECT_TRUE(field.contains(a));
    EXPECT_TRUE(field.contains(b));
    EXPECT_EQ(a, field.clamp(ap_pos + Vec2{12, -8}));
    EXPECT_LE(distance(a, ap_pos), std::hypot(12.0, 8.0) + 1e-9);
    EXPECT_LE(distance(a, b), std::hypot(32.0, 23.0) + 1e-9);
  }
  EXPECT_EQ(member_a.max_speed(), anchor->max_speed());
}

TEST(Mobility, GroupRejectsNullAnchor) {
  EXPECT_THROW(GroupMobility(nullptr, {0, 0}, Field{100, 100}),
               std::invalid_argument);
}

// --- medium fixture ---

struct MediumTest : ::testing::Test {
  Scheduler sched;
  StationaryMobility near_a{{0, 0}};
  StationaryMobility near_b{{10, 0}};
  StationaryMobility far_c{{500, 0}};

  Medium::Params params() {
    Medium::Params p;
    p.range_m = 50;
    p.loss_rate = 0.0;
    return p;
  }

  FramePtr frame(NodeId sender, size_t size = 100) {
    auto f = std::make_shared<Frame>();
    f->sender = sender;
    f->payload = common::Bytes(size, 0xaa);
    f->kind = "test";
    return f;
  }
};

TEST_F(MediumTest, DeliversWithinRange) {
  Medium medium(sched, params(), common::Rng(1));
  int received = 0;
  NodeId a = medium.add_node(&near_a, nullptr);
  medium.add_node(&near_b, [&](const FramePtr&, NodeId) { ++received; });
  medium.add_node(&far_c, [&](const FramePtr&, NodeId) { ADD_FAILURE(); });
  medium.transmit(frame(a));
  sched.run();
  EXPECT_EQ(received, 1);
}

TEST_F(MediumTest, SenderDoesNotHearItself) {
  Medium medium(sched, params(), common::Rng(1));
  int self_heard = 0;
  NodeId a = medium.add_node(&near_a, [&](const FramePtr&, NodeId) { ++self_heard; });
  medium.add_node(&near_b, nullptr);
  medium.transmit(frame(a));
  sched.run();
  EXPECT_EQ(self_heard, 0);
}

TEST_F(MediumTest, FullLossDropsEverything) {
  auto p = params();
  p.loss_rate = 1.0;
  Medium medium(sched, p, common::Rng(1));
  NodeId a = medium.add_node(&near_a, nullptr);
  medium.add_node(&near_b, [&](const FramePtr&, NodeId) { ADD_FAILURE(); });
  Medium::TxReport report;
  medium.transmit(frame(a), [&](const Medium::TxReport& r) { report = r; });
  sched.run();
  EXPECT_EQ(report.receivers, 1u);
  EXPECT_EQ(report.lost, 1u);
  EXPECT_EQ(medium.stats().losses, 1u);
}

TEST_F(MediumTest, OverlappingTransmissionsCollide) {
  auto p = params();
  p.channel.capture_ratio = 0.0;  // disable capture: any overlap kills
  Medium medium(sched, p, common::Rng(1));
  StationaryMobility pos_b{{20, 0}};
  StationaryMobility pos_r{{10, 0}};
  NodeId a = medium.add_node(&near_a, nullptr);
  NodeId b = medium.add_node(&pos_b, nullptr);
  int received = 0;
  medium.add_node(&pos_r, [&](const FramePtr&, NodeId) { ++received; });
  // Both transmit at t=0: overlap at the receiver in the middle. The
  // senders also jam each other (each is a receiver of the other's
  // frame), so four (frame, receiver) pairs are corrupted in total.
  medium.transmit(frame(a, 1000));
  medium.transmit(frame(b, 1000));
  sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(medium.stats().collision_drops, 4u);
}

TEST_F(MediumTest, CaptureLetsCloserSenderWin) {
  auto p = params();
  p.channel.capture_ratio = 0.7;
  Medium medium(sched, p, common::Rng(1));
  StationaryMobility pos_far{{45, 0}};  // interferer much farther away
  StationaryMobility pos_r{{5, 0}};     // receiver next to A
  NodeId a = medium.add_node(&near_a, nullptr);
  NodeId b = medium.add_node(&pos_far, nullptr);
  int received = 0;
  medium.add_node(&pos_r, [&](const FramePtr& f, NodeId) {
    ++received;
    EXPECT_EQ(f->sender, 0u);  // A's frame captured
  });
  medium.transmit(frame(a, 1000));
  medium.transmit(frame(b, 1000));
  sched.run();
  EXPECT_EQ(received, 1);
  (void)b;
}

TEST_F(MediumTest, NonOverlappingDoNotCollide) {
  Medium medium(sched, params(), common::Rng(1));
  NodeId a = medium.add_node(&near_a, nullptr);
  int received = 0;
  medium.add_node(&near_b, [&](const FramePtr&, NodeId) { ++received; });
  medium.transmit(frame(a, 100));
  // Second transmission scheduled long after the first ends.
  sched.schedule(Duration::milliseconds(100),
                 [&] { medium.transmit(frame(a, 100)); });
  sched.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(medium.stats().collision_drops, 0u);
}

TEST_F(MediumTest, FrameDurationScalesWithSizeAndRate) {
  auto p = params();
  p.data_rate_bps = 1e6;
  p.frame_overhead_bytes = 0;
  p.propagation = Duration{0};
  Medium medium(sched, p, common::Rng(1));
  EXPECT_EQ(medium.frame_duration(125).us, 1000);  // 1000 bits at 1 Mbps
}

TEST_F(MediumTest, BusyForReflectsActiveTransmissions) {
  Medium medium(sched, params(), common::Rng(1));
  NodeId a = medium.add_node(&near_a, nullptr);
  NodeId b = medium.add_node(&near_b, nullptr);
  NodeId c = medium.add_node(&far_c, nullptr);
  EXPECT_FALSE(medium.busy_for(b));
  medium.transmit(frame(a, 10000));
  EXPECT_TRUE(medium.busy_for(b));
  EXPECT_FALSE(medium.busy_for(c));  // out of range: hears nothing
  sched.run();
  EXPECT_FALSE(medium.busy_for(b));
}

TEST_F(MediumTest, NeighborsOf) {
  Medium medium(sched, params(), common::Rng(1));
  NodeId a = medium.add_node(&near_a, nullptr);
  NodeId b = medium.add_node(&near_b, nullptr);
  NodeId c = medium.add_node(&far_c, nullptr);
  auto neighbors = medium.neighbors_of(a);
  EXPECT_EQ(neighbors, std::vector<NodeId>{b});
  EXPECT_TRUE(medium.in_range(a, b));
  EXPECT_FALSE(medium.in_range(a, c));
}

TEST_F(MediumTest, TxByKindAccounting) {
  Medium medium(sched, params(), common::Rng(1));
  NodeId a = medium.add_node(&near_a, nullptr);
  medium.add_node(&near_b, nullptr);
  medium.transmit(frame(a));
  medium.transmit(frame(a));
  sched.run();
  EXPECT_EQ(medium.stats().transmissions, 2u);
  EXPECT_EQ(medium.stats().tx_by_kind.at("test"), 2u);
}

TEST_F(MediumTest, RadioDefersWhileChannelBusy) {
  Medium medium(sched, params(), common::Rng(1));
  NodeId a = medium.add_node(&near_a, nullptr);
  int received = 0;
  NodeId b = medium.add_node(&near_b, [&](const FramePtr&, NodeId) { ++received; });
  Radio radio_a(sched, medium, a, common::Rng(2));
  Radio radio_b(sched, medium, b, common::Rng(3));
  // Both radios asked to send large frames at t=0: CSMA should serialize
  // them rather than collide.
  radio_a.send(frame(a, 5000));
  radio_b.send(frame(b, 5000));
  sched.run();
  EXPECT_EQ(medium.stats().collision_drops, 0u);
  EXPECT_EQ(medium.stats().transmissions, 2u);
}

TEST_F(MediumTest, RadioQueuesFifo) {
  Medium medium(sched, params(), common::Rng(1));
  NodeId a = medium.add_node(&near_a, nullptr);
  std::vector<uint8_t> seen;
  medium.add_node(&near_b, [&](const FramePtr& f, NodeId) {
    seen.push_back(f->payload[0]);
  });
  Radio radio(sched, medium, a, common::Rng(2));
  for (uint8_t i = 0; i < 5; ++i) {
    auto f = std::make_shared<Frame>();
    f->sender = a;
    f->payload = common::Bytes{i};
    f->kind = "test";
    radio.send(std::move(f));
  }
  sched.run();
  EXPECT_EQ(seen, (std::vector<uint8_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace dapes::sim
