// Seeded randomized round-trip property tests for the zero-copy wire API:
// tlv::Writer/Reader, cached-wire Interest/Data, and the IP-lite codec.
//
// Properties:
//   * encode -> decode -> re-encode is byte-identical (canonical form);
//   * a Writer with back-patched nested lengths produces exactly the
//     bytes of the naive intermediate-vector encoder it replaced;
//   * truncated or corrupted wire input is rejected (nullopt), never UB;
//   * decoded packets share the source buffer instead of copying it.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ip/packet.hpp"
#include "ndn/packet.hpp"
#include "ndn/tlv.hpp"

namespace dapes::ndn {
namespace {

using common::BufferSlice;
using common::Bytes;
using common::BytesView;
using common::Rng;

constexpr uint64_t kSeed = 0xDA9E5;
constexpr int kRounds = 200;

Bytes random_bytes(Rng& rng, size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.next_below(256));
  return out;
}

Name random_name(Rng& rng) {
  Name name;
  size_t components = 1 + rng.next_below(6);
  for (size_t i = 0; i < components; ++i) {
    Bytes value = random_bytes(rng, 12);
    if (value.empty()) value.push_back('x');
    name.append(Component(std::move(value)));
  }
  return name;
}

Interest random_interest(Rng& rng) {
  Interest interest(random_name(rng));
  interest.set_nonce(static_cast<uint32_t>(rng.next()));
  interest.set_can_be_prefix(rng.chance(0.5));
  interest.set_lifetime(
      common::Duration::milliseconds(static_cast<int64_t>(rng.next_below(100000))));
  interest.set_hop_limit(static_cast<uint8_t>(rng.next_below(256)));
  if (rng.chance(0.6)) {
    // Sizes straddle the 253-byte varnum boundary to exercise wide
    // back-patched lengths.
    interest.set_app_parameters(random_bytes(rng, 600));
  }
  return interest;
}

Data random_data(Rng& rng, const crypto::PrivateKey* key) {
  Data data(random_name(rng));
  data.set_content(random_bytes(rng, 2000));
  data.set_freshness(
      common::Duration::milliseconds(static_cast<int64_t>(rng.next_below(100000))));
  if (key != nullptr && rng.chance(0.5)) {
    data.sign(*key);
  }
  return data;
}

TEST(CodecRoundTrip, InterestEncodeDecodeReencodeByteIdentical) {
  Rng rng(kSeed);
  for (int i = 0; i < kRounds; ++i) {
    Interest interest = random_interest(rng);
    Bytes wire = interest.encode();

    auto decoded = Interest::decode(BytesView(wire.data(), wire.size()));
    ASSERT_TRUE(decoded.has_value()) << "round " << i;
    EXPECT_EQ(*decoded, interest) << "round " << i;

    // Force an actual re-serialization (copy + cache invalidation) and
    // require the canonical bytes back.
    Interest copy = *decoded;
    copy.set_nonce(decoded->nonce());  // any mutation invalidates the cache
    EXPECT_EQ(copy.encode(), wire) << "round " << i;
  }
}

TEST(CodecRoundTrip, DataEncodeDecodeReencodeByteIdentical) {
  Rng rng(kSeed + 1);
  crypto::KeyChain kc;
  crypto::PrivateKey key = kc.generate_key("/producer");
  for (int i = 0; i < kRounds; ++i) {
    Data data = random_data(rng, &key);
    Bytes wire = data.encode();

    auto decoded = Data::decode(BytesView(wire.data(), wire.size()));
    ASSERT_TRUE(decoded.has_value()) << "round " << i;
    EXPECT_EQ(*decoded, data) << "round " << i;

    Data copy = *decoded;
    copy.set_freshness(decoded->freshness());
    EXPECT_EQ(copy.encode(), wire) << "round " << i;
  }
}

TEST(CodecRoundTrip, WriterMatchesNaiveEncoder) {
  // The back-patching Writer must be byte-compatible with the primitive
  // append_* encoder it replaced, including multi-byte lengths.
  Rng rng(kSeed + 2);
  for (int i = 0; i < kRounds; ++i) {
    uint64_t outer_type = 1 + rng.next_below(1000);
    std::vector<std::pair<uint64_t, Bytes>> children;
    size_t n = rng.next_below(6);
    for (size_t c = 0; c < n; ++c) {
      children.emplace_back(1 + rng.next_below(1000), random_bytes(rng, 400));
    }

    Bytes naive_inner;
    for (const auto& [type, value] : children) {
      tlv::append_tlv(naive_inner, type, BytesView(value.data(), value.size()));
    }
    Bytes naive;
    tlv::append_tlv(naive, outer_type,
                    BytesView(naive_inner.data(), naive_inner.size()));

    tlv::Writer w;
    auto nested = w.begin(outer_type);
    for (const auto& [type, value] : children) {
      w.tlv(type, BytesView(value.data(), value.size()));
    }
    w.end(nested);

    EXPECT_EQ(w.take(), naive) << "round " << i;
  }
}

TEST(CodecRoundTrip, WriterDeepNestingBackPatches) {
  // Nested begin()/end() three levels deep, with the innermost payload
  // large enough that every level needs a wide (0xfd) length.
  Bytes payload(70000, 0xab);
  tlv::Writer w;
  auto a = w.begin(10);
  auto b = w.begin(11);
  auto c = w.begin(12);
  w.raw(BytesView(payload.data(), payload.size()));
  w.end(c);
  w.end(b);
  w.end(a);
  Bytes wire = w.take();

  tlv::Reader ra{BytesView(wire.data(), wire.size())};
  auto ea = ra.expect(10);
  tlv::Reader rb{ea.value};
  auto eb = rb.expect(11);
  tlv::Reader rc{eb.value};
  auto ec = rc.expect(12);
  EXPECT_EQ(ec.value.size(), payload.size());
  EXPECT_TRUE(ra.at_end());
}

TEST(CodecRoundTrip, TruncationRejectedWithoutUB) {
  Rng rng(kSeed + 3);
  crypto::KeyChain kc;
  crypto::PrivateKey key = kc.generate_key("/producer");
  for (int i = 0; i < 50; ++i) {
    Bytes wire = rng.chance(0.5) ? random_interest(rng).encode()
                                 : random_data(rng, &key).encode();
    for (size_t len = 0; len < wire.size(); ++len) {
      // Truncated input must never decode successfully or crash.
      BytesView prefix(wire.data(), len);
      EXPECT_FALSE(Interest::decode(prefix).has_value());
      EXPECT_FALSE(Data::decode(prefix).has_value());
    }
  }
}

TEST(CodecRoundTrip, GarbageRejectedWithoutUB) {
  Rng rng(kSeed + 4);
  for (int i = 0; i < 500; ++i) {
    Bytes junk = random_bytes(rng, 64);
    BytesView view(junk.data(), junk.size());
    (void)Interest::decode(view);  // must not crash; result irrelevant
    (void)Data::decode(view);
    (void)ip::Packet::decode(view);
  }
}

TEST(CodecRoundTrip, CorruptionNeverRoundTripsSilently) {
  // Flip one byte: decode either fails or yields a different packet that
  // still re-encodes consistently (no torn state).
  Rng rng(kSeed + 5);
  for (int i = 0; i < 100; ++i) {
    Interest interest = random_interest(rng);
    Bytes wire = interest.encode();
    Bytes corrupt = wire;
    size_t pos = rng.next_below(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.next_below(255));
    auto decoded = Interest::decode(BytesView(corrupt.data(), corrupt.size()));
    if (decoded.has_value()) {
      // Whatever was decoded must itself round-trip consistently.
      Interest copy = *decoded;
      copy.set_nonce(decoded->nonce());  // force a real re-serialization
      Bytes rewire = copy.encode();
      auto redecoded = Interest::decode(BytesView(rewire.data(), rewire.size()));
      ASSERT_TRUE(redecoded.has_value());
      EXPECT_EQ(*redecoded, copy);
    }
  }
}

TEST(CodecRoundTrip, DecodedSlicesShareSourceBuffer) {
  Data data(Name("/share/1"));
  data.set_content(Bytes(512, 0x5a));
  BufferSlice wire = data.wire();

  auto decoded = Data::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  // Content is a view into the wire buffer, not a copy.
  const uint8_t* begin = wire.data();
  const uint8_t* end = wire.data() + wire.size();
  EXPECT_GE(decoded->content().data(), begin);
  EXPECT_LT(decoded->content().data(), end);
  // The cached wire is the same storage.
  EXPECT_EQ(decoded->wire().data(), wire.data());
}

TEST(CodecRoundTrip, IpPacketRoundTrip) {
  Rng rng(kSeed + 6);
  for (int i = 0; i < kRounds; ++i) {
    ip::Packet p;
    p.src = static_cast<ip::Address>(rng.next());
    p.dst = static_cast<ip::Address>(rng.next());
    p.next_hop = static_cast<ip::Address>(rng.next());
    p.proto = static_cast<ip::Proto>(1 + rng.next_below(6));
    p.ttl = static_cast<uint8_t>(rng.next_below(256));
    size_t hops = rng.next_below(5);
    for (size_t h = 0; h < hops; ++h) {
      p.route.push_back(static_cast<ip::Address>(rng.next()));
    }
    p.route_pos = static_cast<uint8_t>(rng.next_below(hops + 1));
    p.payload = random_bytes(rng, 300);

    Bytes wire = p.encode();
    auto decoded = ip::Packet::decode(BytesView(wire.data(), wire.size()));
    ASSERT_TRUE(decoded.has_value()) << "round " << i;
    EXPECT_EQ(*decoded, p) << "round " << i;
    for (size_t len = 0; len < wire.size(); ++len) {
      EXPECT_FALSE(ip::Packet::decode(BytesView(wire.data(), len)).has_value());
    }
  }
}

}  // namespace
}  // namespace dapes::ndn
