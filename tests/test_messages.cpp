// Unit tests for DAPES control messages and namespace helpers.
#include <gtest/gtest.h>

#include "dapes/messages.hpp"
#include "dapes/namespace.hpp"

namespace dapes::core {
namespace {

using common::BytesView;

TEST(Namespace, DiscoveryNames) {
  EXPECT_EQ(discovery_prefix().to_uri(), "/dapes/discovery");
  Name query = discovery_query_name(0xabcd);
  EXPECT_TRUE(is_discovery_query(query));
  EXPECT_TRUE(discovery_prefix().is_prefix_of(query));
  EXPECT_EQ(discovery_response_name(query, "peer-3").to_uri(),
            query.to_uri() + "/peer-3");
  EXPECT_FALSE(is_discovery_query(discovery_prefix()));
  EXPECT_FALSE(is_discovery_query(discovery_response_name(query, "p")));
  EXPECT_FALSE(is_discovery_query(Name("/dapes/discovery/notquery")));
}

TEST(Namespace, BitmapNames) {
  Name coll("/damaged-bridge-1533783192");
  EXPECT_EQ(bitmap_prefix(coll).to_uri(),
            "/dapes/bitmap/damaged-bridge-1533783192");
  EXPECT_EQ(bitmap_data_name(coll, "A", 4).to_uri(),
            "/dapes/bitmap/damaged-bridge-1533783192/A/4");
}

TEST(Namespace, MetadataNames) {
  Name coll("/c");
  Name prefix = metadata_prefix(coll, "a23d1f9b");
  EXPECT_EQ(prefix.to_uri(), "/c/metadata-file/a23d1f9b");
  EXPECT_EQ(metadata_segment_name(prefix, 2).to_uri(),
            "/c/metadata-file/a23d1f9b/2");
  EXPECT_TRUE(is_metadata_name(prefix));
  EXPECT_FALSE(is_metadata_name(Name("/c/file/0")));
  EXPECT_EQ(collection_of_metadata_name(prefix)->to_uri(), "/c");
  EXPECT_FALSE(collection_of_metadata_name(Name("/c/file/0")).has_value());
}

TEST(Namespace, PacketNames) {
  Name coll("/c");
  Name pkt = packet_name(coll, "bridge-picture", 7);
  EXPECT_EQ(pkt.to_uri(), "/c/bridge-picture/7");
  auto parts = parse_packet_name(pkt, 1);
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(parts->collection.to_uri(), "/c");
  EXPECT_EQ(parts->file_name, "bridge-picture");
  EXPECT_EQ(parts->seq, 7u);
}

TEST(Namespace, ParsePacketNameRejectsBadShapes) {
  EXPECT_FALSE(parse_packet_name(Name("/c/file/x"), 1).has_value());
  EXPECT_FALSE(parse_packet_name(Name("/c/file"), 1).has_value());
  EXPECT_FALSE(parse_packet_name(Name("/c/a/b/0"), 1).has_value());
}

TEST(Namespace, ControlNames) {
  EXPECT_TRUE(is_control_name(Name("/dapes/discovery")));
  EXPECT_TRUE(is_control_name(Name("/dapes/bitmap/c/A/1")));
  EXPECT_FALSE(is_control_name(Name("/collection/file/0")));
  EXPECT_FALSE(is_control_name(Name("")));
}

TEST(DiscoveryMessage, RoundTrip) {
  DiscoveryMessage msg;
  msg.peer_id = "resident-A";
  msg.metadata_names.push_back(Name("/damaged-bridge/metadata-file/ab12cd34"));
  msg.metadata_names.push_back(Name("/flood-map/metadata-file/99887766"));
  auto wire = msg.encode();
  auto decoded = DiscoveryMessage::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(DiscoveryMessage, EmptyCollectionsAllowed) {
  DiscoveryMessage msg;
  msg.peer_id = "lonely";
  auto wire = msg.encode();
  auto decoded = DiscoveryMessage::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->metadata_names.empty());
}

TEST(DiscoveryMessage, RejectsMissingPeerId) {
  common::Bytes junk;  // no kPeerId element
  EXPECT_FALSE(DiscoveryMessage::decode(BytesView(junk.data(), junk.size()))
                   .has_value());
}

TEST(BitmapMessage, RoundTrip) {
  BitmapMessage msg;
  msg.peer_id = "B";
  msg.collection = Name("/damaged-bridge-1533783192");
  msg.round = 3;
  msg.layout = {{"bridge-picture", 100}, {"bridge-location", 2}};
  msg.bitmap = Bitmap(102);
  msg.bitmap.set(0);
  msg.bitmap.set(101);
  auto wire = msg.encode();
  auto decoded = BitmapMessage::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->peer_id, "B");
  EXPECT_EQ(decoded->collection, msg.collection);
  EXPECT_EQ(decoded->round, 3u);
  ASSERT_EQ(decoded->layout.size(), 2u);
  EXPECT_EQ(decoded->layout[1].name, "bridge-location");
  EXPECT_EQ(decoded->layout[1].packet_count, 2u);
  EXPECT_EQ(decoded->bitmap, msg.bitmap);
}

TEST(BitmapMessage, RejectsMissingBitmap) {
  BitmapMessage msg;
  msg.peer_id = "B";
  msg.collection = Name("/c");
  msg.bitmap = Bitmap(4);
  auto wire = msg.encode();
  // Truncate the bitmap TLV off the end.
  wire.resize(wire.size() - (msg.bitmap.encode().size() + 2));
  EXPECT_FALSE(BitmapMessage::decode(BytesView(wire.data(), wire.size()))
                   .has_value());
}

TEST(BitmapMessage, RejectsGarbage) {
  common::Bytes junk = common::bytes_of("garbage garbage garbage");
  EXPECT_FALSE(
      BitmapMessage::decode(BytesView(junk.data(), junk.size())).has_value());
}

TEST(BitmapMessage, LayoutSupportsForeignMapping) {
  // An intermediate node without the metadata can still map packet names
  // to bit positions using the carried layout.
  BitmapMessage msg;
  msg.peer_id = "B";
  msg.collection = Name("/c");
  msg.layout = {{"f0", 10}, {"f1", 5}};
  msg.bitmap = Bitmap(15);
  msg.bitmap.set(12);  // f1 seq 2
  auto wire = msg.encode();
  auto decoded = BitmapMessage::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  CollectionLayout layout(decoded->layout);
  auto idx = layout.index_of("f1", 2);
  ASSERT_TRUE(idx.has_value());
  EXPECT_TRUE(decoded->bitmap.test(*idx));
}

}  // namespace
}  // namespace dapes::core
