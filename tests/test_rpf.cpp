// Unit tests for the RPF fetch strategies (paper §IV-E).
#include <gtest/gtest.h>

#include "dapes/rpf.hpp"

namespace dapes::core {
namespace {

using common::TimePoint;

Bitmap bits(size_t n, std::initializer_list<size_t> set) {
  Bitmap bm(n);
  for (size_t i : set) bm.set(i);
  return bm;
}

RpfOptions options(size_t total, bool random_start = false) {
  RpfOptions o;
  o.total_packets = total;
  o.random_start = random_start;
  o.seed = 7;
  return o;
}

TEST(RankPackets, RarestFirstAmongAvailable) {
  // have_counts: packet 0 held by 3, packet 1 by 1, packet 2 by 2,
  // packet 3 by nobody.
  std::vector<uint32_t> counts = {3, 1, 2, 0};
  std::vector<size_t> order = {0, 1, 2, 3};
  auto ranked = rank_packets(counts, 3, order);
  EXPECT_EQ(ranked, (std::vector<size_t>{1, 2, 0, 3}));
}

TEST(RankPackets, TieBreakFollowsOrder) {
  std::vector<uint32_t> counts = {1, 1, 1};
  std::vector<size_t> order = {2, 0, 1};
  auto ranked = rank_packets(counts, 1, order);
  EXPECT_EQ(ranked, (std::vector<size_t>{2, 0, 1}));
}

TEST(LocalRpf, SelectsRarestAvailable) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood, options(4));
  // Neighbor A has {0,1,2}, B has {0}. Rarity: 1 held-by-2, 1,2 held-by-1.
  rpf->on_bitmap("A", bits(4, {0, 1, 2}), TimePoint{0});
  rpf->on_bitmap("B", bits(4, {0}), TimePoint{0});
  Bitmap own(4);
  std::set<size_t> in_flight;
  auto pick = rpf->select_next(own, in_flight);
  ASSERT_TRUE(pick.has_value());
  // Packets 1 and 2 are rarest (1 holder each); tie-break sequential -> 1.
  EXPECT_EQ(*pick, 1u);
}

TEST(LocalRpf, SkipsOwnedAndInFlight) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood, options(4));
  rpf->on_bitmap("A", bits(4, {0, 1, 2, 3}), TimePoint{0});
  Bitmap own = bits(4, {0});
  std::set<size_t> in_flight = {1};
  auto pick = rpf->select_next(own, in_flight);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(LocalRpf, NothingLeftReturnsNullopt) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood, options(2));
  Bitmap own = bits(2, {0, 1});
  std::set<size_t> in_flight;
  EXPECT_FALSE(rpf->select_next(own, in_flight).has_value());
}

TEST(LocalRpf, NeighborLossDropsState) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood, options(4));
  rpf->on_bitmap("A", bits(4, {2}), TimePoint{0});
  EXPECT_TRUE(rpf->known_available(2));
  rpf->on_neighbor_lost("A");
  EXPECT_FALSE(rpf->known_available(2));
  EXPECT_EQ(rpf->known_bitmaps(), 0u);
}

TEST(LocalRpf, RebitmapReplacesOldState) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood, options(4));
  rpf->on_bitmap("A", bits(4, {0}), TimePoint{0});
  rpf->on_bitmap("A", bits(4, {1}), TimePoint{1});
  EXPECT_FALSE(rpf->known_available(0));
  EXPECT_TRUE(rpf->known_available(1));
  EXPECT_EQ(rpf->known_bitmaps(), 1u);
}

TEST(EncounterRpf, KeepsHistoryAfterNeighborLoss) {
  auto rpf = make_fetch_strategy(RpfKind::kEncounterBased, options(4));
  rpf->on_bitmap("A", bits(4, {2}), TimePoint{0});
  rpf->on_neighbor_lost("A");
  EXPECT_TRUE(rpf->known_available(2));
  EXPECT_EQ(rpf->known_bitmaps(), 1u);
}

TEST(EncounterRpf, HistoryEviction) {
  RpfOptions o = options(4);
  o.history_limit = 2;
  auto rpf = make_fetch_strategy(RpfKind::kEncounterBased, o);
  rpf->on_bitmap("A", bits(4, {0}), TimePoint{0});
  rpf->on_bitmap("B", bits(4, {1}), TimePoint{1});
  rpf->on_bitmap("C", bits(4, {2}), TimePoint{2});
  // A evicted (oldest); B and C remain.
  EXPECT_FALSE(rpf->known_available(0));
  EXPECT_TRUE(rpf->known_available(1));
  EXPECT_TRUE(rpf->known_available(2));
  EXPECT_EQ(rpf->known_bitmaps(), 2u);
}

TEST(EncounterRpf, UpdateDoesNotEvict) {
  RpfOptions o = options(4);
  o.history_limit = 2;
  auto rpf = make_fetch_strategy(RpfKind::kEncounterBased, o);
  rpf->on_bitmap("A", bits(4, {0}), TimePoint{0});
  rpf->on_bitmap("B", bits(4, {1}), TimePoint{1});
  rpf->on_bitmap("A", bits(4, {3}), TimePoint{2});  // update, not insert
  EXPECT_TRUE(rpf->known_available(1));
  EXPECT_TRUE(rpf->known_available(3));
  EXPECT_FALSE(rpf->known_available(0));
}

TEST(Rpf, SameStartIsSequentialWithoutKnowledge) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood,
                                 options(8, /*random_start=*/false));
  Bitmap own(8);
  std::set<size_t> in_flight;
  EXPECT_EQ(rpf->select_next(own, in_flight), 0u);
}

TEST(Rpf, RandomStartPermutesOrder) {
  // With no bitmaps and random start, first pick is (very likely) not 0
  // for some seed; and two strategies with different seeds disagree.
  RpfOptions a = options(1000, true);
  a.seed = 1;
  RpfOptions b = options(1000, true);
  b.seed = 2;
  auto ra = make_fetch_strategy(RpfKind::kLocalNeighborhood, a);
  auto rb = make_fetch_strategy(RpfKind::kLocalNeighborhood, b);
  Bitmap own(1000);
  std::set<size_t> in_flight;
  auto pa = ra->select_next(own, in_flight);
  auto pb = rb->select_next(own, in_flight);
  ASSERT_TRUE(pa && pb);
  EXPECT_NE(*pa, *pb);
}

TEST(Rpf, EmptyCollection) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood, options(0));
  Bitmap own(0);
  std::set<size_t> in_flight;
  EXPECT_FALSE(rpf->select_next(own, in_flight).has_value());
}

class RpfBothKinds : public ::testing::TestWithParam<RpfKind> {};

TEST_P(RpfBothKinds, DrainsEntireCollection) {
  // Property: repeatedly selecting + acquiring covers every packet
  // exactly once.
  auto rpf = make_fetch_strategy(GetParam(), options(64, true));
  rpf->on_bitmap("A", bits(64, {1, 5, 9, 33}), TimePoint{0});
  Bitmap own(64);
  std::set<size_t> in_flight;
  std::set<size_t> seen;
  while (auto pick = rpf->select_next(own, in_flight)) {
    EXPECT_TRUE(seen.insert(*pick).second) << "duplicate " << *pick;
    own.set(*pick);
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST_P(RpfBothKinds, AvailablePacketsSelectedBeforeUnknown) {
  auto rpf = make_fetch_strategy(GetParam(), options(16));
  rpf->on_bitmap("A", bits(16, {10, 12}), TimePoint{0});
  Bitmap own(16);
  std::set<size_t> in_flight;
  auto first = rpf->select_next(own, in_flight);
  auto second_own = own;
  second_own.set(*first);
  auto second = rpf->select_next(second_own, in_flight);
  std::set<size_t> firsts = {*first, *second};
  EXPECT_EQ(firsts, (std::set<size_t>{10, 12}));
}

INSTANTIATE_TEST_SUITE_P(Kinds, RpfBothKinds,
                         ::testing::Values(RpfKind::kLocalNeighborhood,
                                           RpfKind::kEncounterBased));

TEST(Rpf, StateBytesNonzeroWithNeighbors) {
  auto rpf = make_fetch_strategy(RpfKind::kLocalNeighborhood, options(128));
  size_t before = rpf->state_bytes();
  rpf->on_bitmap("A", bits(128, {0}), TimePoint{0});
  EXPECT_GT(rpf->state_bytes(), before);
}

}  // namespace
}  // namespace dapes::core
