// Unit tests for common utilities: bytes, rng, time.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace dapes::common {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(BytesView(data.data(), data.size())), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, BigEndianRoundTrip) {
  Bytes out;
  append_be(out, 0x0102030405060708ULL, 8);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0], 0x01);
  EXPECT_EQ(out[7], 0x08);
  EXPECT_EQ(read_be(BytesView(out.data(), out.size()), 0, 8),
            0x0102030405060708ULL);
}

TEST(Bytes, BigEndianPartialWidths) {
  for (size_t width = 1; width <= 8; ++width) {
    Bytes out;
    uint64_t value = 0xdeadbeefcafebabeULL >> (8 * (8 - width));
    append_be(out, value, width);
    EXPECT_EQ(out.size(), width);
    EXPECT_EQ(read_be(BytesView(out.data(), out.size()), 0, width), value);
  }
}

TEST(Bytes, ReadBeOutOfRangeThrows) {
  Bytes out = {1, 2};
  EXPECT_THROW(read_be(BytesView(out.data(), out.size()), 1, 2),
               std::out_of_range);
}

TEST(Bytes, BeWidth) {
  EXPECT_EQ(be_width(0), 1u);
  EXPECT_EQ(be_width(0xff), 1u);
  EXPECT_EQ(be_width(0x100), 2u);
  EXPECT_EQ(be_width(0xffffffffffffffffULL), 8u);
}

TEST(Bytes, Equal) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2};
  EXPECT_TRUE(equal(BytesView(a.data(), a.size()), BytesView(b.data(), b.size())));
  EXPECT_FALSE(equal(BytesView(a.data(), a.size()), BytesView(c.data(), c.size())));
  EXPECT_TRUE(equal({}, {}));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependence) {
  Rng parent(29);
  Rng child = parent.fork();
  // Child stream should not equal continued parent stream.
  bool all_same = true;
  for (int i = 0; i < 16; ++i) {
    if (parent.next() != child.next()) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(Time, DurationConstruction) {
  EXPECT_EQ(Duration::milliseconds(5).us, 5000);
  EXPECT_EQ(Duration::seconds(1.5).us, 1500000);
  EXPECT_EQ(Duration::microseconds(7).us, 7);
}

TEST(Time, DurationArithmetic) {
  Duration a = Duration::milliseconds(10);
  Duration b = Duration::milliseconds(4);
  EXPECT_EQ((a + b).us, 14000);
  EXPECT_EQ((a - b).us, 6000);
  EXPECT_EQ((a * 3).us, 30000);
  EXPECT_EQ((a / 2).us, 5000);
  EXPECT_LT(b, a);
}

TEST(Time, TimePointArithmetic) {
  TimePoint t{1000};
  TimePoint u = t + Duration{500};
  EXPECT_EQ(u.us, 1500);
  EXPECT_EQ((u - t).us, 500);
  EXPECT_EQ((u - Duration{500}).us, 1000);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(TimePoint{1500000}), "1.500000s");
}

}  // namespace
}  // namespace dapes::common
