// Invariant suite for the pluggable channel/PHY layer (sim/channel.hpp).
//
// The four contracts DESIGN.md "Channel & PHY models" promises:
//  1. The unit-disk ChannelModel is *bit-identical* to the pre-refactor
//     medium: the 12-seed randomized equivalence streams (the exact
//     worlds tests/test_medium_equivalence.cpp builds) hash to golden
//     values captured from the tree before the channel layer existed.
//  2. The log-distance reception probability is monotone non-increasing
//     in distance, 0.5 at the nominal range, and exactly 0 beyond the
//     deterministic coverage cutoff.
//  3. The capture rule is order-independent: the survive/collide decision
//     is a fold of a pure per-interferer predicate, so neither the order
//     interferers are marked nor the order transmissions start changes
//     any delivery outcome.
//  4. Airtime grows strictly with payload size (and the log-distance
//     model charges its fixed PHY preamble).
// Plus the engine-level guarantees the new scenario families lean on:
// grid-vs-brute identity under the log-distance channel (keyed draws)
// and under mixed-range radios (the hetero-only carrier-sense/pruning
// paths), quasi-static per-link shadowing, and bit-identical loss.sweep
// results for any --jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/driver.hpp"
#include "harness/sweep.hpp"
#include "harness/trial_runner.hpp"
#include "medium_test_world.hpp"
#include "sim/channel.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::sim {
namespace {

using testworld::World;
using testworld::build_world;
using testworld::world_hash;

// ---------------------------------------------------------------------
// 1. Unit-disk reference: bit-identical to the pre-refactor medium.
// ---------------------------------------------------------------------

/// Golden log hashes of the 12 equivalence streams, captured from the
/// tree immediately *before* the channel layer was introduced (grid and
/// brute agreed on every one, so one hash per seed). Any change to RNG
/// draw order, receiver enumeration, collision marking or capture
/// arithmetic under the default channel shows up here.
constexpr uint64_t kPreRefactorHashes[12] = {
    0x35330c4b165225e3ULL, 0x1db81aad1c59e10bULL, 0x9f5faa631012dcf3ULL,
    0x00de7d9414d7870fULL, 0x397f6afb2772cf5fULL, 0x64bbad7db9ee554fULL,
    0xb4b9c36d49663f6eULL, 0x67669a0cf5e8e7d7ULL, 0x1ec5b374d524ddb3ULL,
    0x41fc357b2989f6d5ULL, 0xa217f4135b93b198ULL, 0x78875166e5664132ULL,
};

class UnitDiskGolden : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnitDiskGolden, BitIdenticalToPreRefactorMedium) {
  const uint64_t seed = GetParam();
  for (bool brute : {false, true}) {
    World w;
    build_world(w, seed, brute, nullptr);
    w.sched.run();
    EXPECT_EQ(world_hash(w), kPreRefactorHashes[seed - 1])
        << "seed=" << seed << " brute=" << brute;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitDiskGolden,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// 1b. Plain log-distance: zero drift for existing configs.
// ---------------------------------------------------------------------

/// Golden log hashes of the same 12 worlds under a fixed plain
/// log-distance configuration (PR-5 knobs only: alpha 3, sigma 6 dB,
/// softness 2 dB, link_seed derived per seed), captured when the
/// channel realism stack (Gilbert-Elliott bursts, fading, correlated
/// shadowing, adaptive rate) was introduced. The stack's contract is
/// that every disabled stage consumes *zero* draws, so configurations
/// predating it replay the exact same RNG streams — any new stage that
/// sneaks a draw into the default path shows up here.
constexpr uint64_t kLogDistanceHashes[12] = {
    0x3f612ffa6c90f2a0ULL, 0xf667ddb989d91e91ULL, 0x667831f5a45d4fd0ULL,
    0xeba61f54dc60780aULL, 0x2bd689030dad40a8ULL, 0x42fe84b2d55efb58ULL,
    0x30234695a38b49bbULL, 0xebbe0c2d50bf7ff2ULL, 0xe7d8b99de5176a10ULL,
    0x7928f99ca59d9058ULL, 0xa1fd92a4b960350aULL, 0x2db040f8a7c9b908ULL,
};

class LogDistanceGolden : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogDistanceGolden, PlainLogDistanceConfigHasZeroDrift) {
  const uint64_t seed = GetParam();
  ChannelParams cp;
  cp.model = "log-distance";
  cp.path_loss_exponent = 3.0;
  cp.shadowing_sigma_db = 6.0;
  cp.softness_db = 2.0;
  cp.link_seed = common::derive_seed(seed, 78);
  for (bool brute : {false, true}) {
    World w;
    build_world(w, seed, brute, &cp);
    w.sched.run();
    EXPECT_EQ(world_hash(w), kLogDistanceHashes[seed - 1])
        << "seed=" << seed << " brute=" << brute;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogDistanceGolden,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// 2. Log-distance reception curve.
// ---------------------------------------------------------------------

TEST(LogDistanceChannel, ReceptionProbabilityMonotoneInDistance) {
  for (double alpha : {2.0, 3.0, 4.5}) {
    for (double sigma : {0.0, 4.0, 8.0}) {
      for (double softness : {0.0, 2.0}) {
        ChannelParams cp;
        cp.model = "log-distance";
        cp.path_loss_exponent = alpha;
        cp.shadowing_sigma_db = sigma;
        cp.softness_db = softness;
        ChannelModelPtr ch = make_channel_model(cp);
        const double range = 60.0;
        const double coverage = ch->coverage_m(range);
        ASSERT_GE(coverage, range);
        double prev = 1.0;
        for (double d = 1.0; d <= coverage * 1.2; d += coverage / 200.0) {
          double p = ch->reception_probability(d, range);
          EXPECT_LE(p, prev) << "alpha=" << alpha << " sigma=" << sigma
                             << " softness=" << softness << " d=" << d;
          EXPECT_GE(p, 0.0);
          EXPECT_LE(p, 1.0);
          if (d > coverage) EXPECT_EQ(p, 0.0);
          prev = p;
        }
        if (softness > 0.0) {
          EXPECT_NEAR(ch->reception_probability(range, range), 0.5, 1e-9);
        } else {
          // Softness 0 degenerates to the unit-disk step at the range.
          EXPECT_EQ(ch->reception_probability(range * 0.999, range), 1.0);
          EXPECT_EQ(ch->reception_probability(range * 1.001, range), 0.0);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// 3. Capture is order-independent.
// ---------------------------------------------------------------------

TEST(Capture, FoldOverInterferersIsOrderIndependent) {
  for (const char* model : {"unit-disk", "log-distance"}) {
    ChannelParams cp;
    cp.model = model;
    ChannelModelPtr ch = make_channel_model(cp);
    common::Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
      const double own_d = rng.uniform(1.0, 100.0);
      const double own_r = rng.uniform(20.0, 80.0);
      std::vector<std::pair<double, double>> interferers;
      const size_t k = 1 + rng.next_below(5);
      for (size_t i = 0; i < k; ++i) {
        interferers.push_back(
            {rng.uniform(1.0, 150.0), rng.uniform(20.0, 80.0)});
      }
      auto collides = [&](const std::vector<std::pair<double, double>>& v) {
        for (const auto& [d, r] : v) {
          if (!ch->captured(own_d, own_r, d, r)) return true;
        }
        return false;
      };
      const bool reference = collides(interferers);
      for (int perm = 0; perm < 8; ++perm) {
        rng.shuffle(interferers);
        EXPECT_EQ(collides(interferers), reference) << model;
      }
    }
  }
}

TEST(Capture, TransmissionStartOrderDoesNotChangeDeliveries) {
  // Receiver at the origin; a near sender whose frame the capture rule
  // saves, and a far sender whose frame dies in the overlap. With a
  // deterministic channel (no shadowing, hard curve, zero ambient loss)
  // the delivered set must be identical whichever transmission is
  // submitted first within the same event.
  for (bool near_first : {false, true}) {
    Scheduler sched;
    Medium::Params mp;
    mp.range_m = 60.0;
    mp.loss_rate = 0.0;
    mp.channel.model = "log-distance";
    mp.channel.shadowing_sigma_db = 0.0;
    mp.channel.softness_db = 0.0;
    mp.channel.capture_threshold_db = 6.0;
    Medium medium(sched, mp, common::Rng(1));

    StationaryMobility receiver({0.0, 0.0});
    StationaryMobility near_sender({10.0, 0.0});
    StationaryMobility far_sender({40.0, 0.0});
    std::vector<std::string> delivered;
    medium.add_node(&receiver, [&](const FramePtr& f, NodeId) {
      delivered.push_back(f->kind);
    });
    medium.add_node(&near_sender, nullptr);
    medium.add_node(&far_sender, nullptr);

    auto send = [&](NodeId sender, const char* kind) {
      auto f = std::make_shared<Frame>();
      f->sender = sender;
      f->payload = common::Bytes(200, 0x2a);
      f->kind = kind;
      medium.transmit(f);
    };
    sched.schedule_at(TimePoint{0}, [&] {
      if (near_first) {
        send(1, "near");
        send(2, "far");
      } else {
        send(2, "far");
        send(1, "near");
      }
    });
    sched.run();

    // SIR of the near frame over the far one at the receiver:
    // 30*log10(40/10) ≈ 18 dB >= 6 dB threshold -> captured; the far
    // frame's SIR is -18 dB -> collided. Either submission order. (The
    // two senders also hear each other's frames and each drops the other
    // on the overlap, hence 3 collision drops in total.)
    ASSERT_EQ(delivered.size(), 1u) << "near_first=" << near_first;
    EXPECT_EQ(delivered[0], "near");
    EXPECT_EQ(medium.stats().collision_drops, 3u);
  }
}

// ---------------------------------------------------------------------
// 4. Airtime grows with payload.
// ---------------------------------------------------------------------

TEST(Airtime, GrowsStrictlyWithPayload) {
  for (const char* model : {"unit-disk", "log-distance"}) {
    ChannelParams cp;
    cp.model = model;
    ChannelModelPtr ch = make_channel_model(cp);
    // 1 Mbps so every step is at least a few of the scheduler's
    // microsecond ticks (airtime is non-strict only below tick size).
    Duration prev = ch->airtime(0, 1e6);
    for (size_t bytes : {1u, 34u, 100u, 1024u, 1500u, 65535u}) {
      Duration d = ch->airtime(bytes, 1e6);
      EXPECT_GT(d.us, prev.us) << model << " bytes=" << bytes;
      prev = d;
    }
  }
  // The reference keeps the historic linear formula exactly…
  ChannelParams ud;
  EXPECT_EQ(make_channel_model(ud)->airtime(125, 1e6).us, 1000);
  // …and the log-distance model charges its PHY preamble on top.
  ChannelParams ld;
  ld.model = "log-distance";
  ld.preamble_us = 192.0;
  EXPECT_EQ(make_channel_model(ld)->airtime(125, 1e6).us, 1192);
}

// ---------------------------------------------------------------------
// Grid vs brute force under the log-distance channel: the keyed per-link
// draws make delivery outcomes independent of the spatial index.
// ---------------------------------------------------------------------

class LogDistanceEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogDistanceEquivalence, GridMatchesBruteForceExactly) {
  const uint64_t seed = GetParam();
  // Channel parameters drawn once, shared by both worlds.
  common::Rng cfg(common::derive_seed(seed, 77));
  ChannelParams cp;
  cp.model = "log-distance";
  cp.path_loss_exponent = cfg.uniform(2.0, 5.0);
  cp.shadowing_sigma_db = cfg.chance(0.5) ? cfg.uniform(1.0, 8.0) : 0.0;
  cp.softness_db = cfg.chance(0.5) ? cfg.uniform(0.5, 4.0) : 0.0;
  cp.link_seed = common::derive_seed(seed, 78);

  World grid, brute;
  build_world(grid, seed, /*brute=*/false, &cp);
  build_world(brute, seed, /*brute=*/true, &cp);
  grid.sched.run();
  brute.sched.run();

  ASSERT_EQ(grid.log.size(), brute.log.size());
  for (size_t i = 0; i < grid.log.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(grid.log[i], brute.log[i]);
  }
  EXPECT_EQ(world_hash(grid), world_hash(brute));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogDistanceEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Grid vs brute force with mixed-range radios: the hetero-only code
// paths (per-transmission coverage in carrier sense, coverage-sum
// collision pruning, directional neighbor queries) against the all-pairs
// oracle, under both channel models.
// ---------------------------------------------------------------------

class HeteroEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeteroEquivalence, GridMatchesBruteForceExactly) {
  const uint64_t seed = GetParam();
  for (bool log_distance : {false, true}) {
    ChannelParams cp;
    std::optional<ChannelParams> channel;
    if (log_distance) {
      common::Rng cfg(common::derive_seed(seed, 79));
      cp.model = "log-distance";
      cp.path_loss_exponent = cfg.uniform(2.0, 5.0);
      cp.shadowing_sigma_db = cfg.chance(0.5) ? cfg.uniform(1.0, 8.0) : 0.0;
      cp.link_seed = common::derive_seed(seed, 80);
      channel = cp;
    }

    World grid, brute;
    build_world(grid, seed, /*brute=*/false,
                channel ? &*channel : nullptr, /*hetero_radios=*/true);
    build_world(brute, seed, /*brute=*/true,
                channel ? &*channel : nullptr, /*hetero_radios=*/true);
    grid.sched.run();
    brute.sched.run();

    ASSERT_EQ(grid.log.size(), brute.log.size()) << "logdist=" << log_distance;
    for (size_t i = 0; i < grid.log.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(grid.log[i], brute.log[i]) << "logdist=" << log_distance;
    }
    EXPECT_EQ(world_hash(grid), world_hash(brute));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeteroEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Shadowing is quasi-static per link, not per-frame fast fading.
// ---------------------------------------------------------------------

TEST(LogDistanceChannel, ShadowingIsStaticPerLink) {
  // With a hard reception curve (softness 0), zero ambient loss and a
  // large shadowing sigma, each link's fate is decided entirely by its
  // one shadowing value: every frame between the same pair must share
  // that fate. Across many link seeds both fates must occur (the
  // receiver sits slightly beyond the nominal range, so the sign of the
  // shadow decides).
  int all_or_nothing = 0, delivered_links = 0;
  const int kFrames = 20;
  for (uint64_t link_seed = 1; link_seed <= 24; ++link_seed) {
    Scheduler sched;
    Medium::Params mp;
    mp.range_m = 60.0;
    mp.loss_rate = 0.0;
    mp.channel.model = "log-distance";
    mp.channel.shadowing_sigma_db = 8.0;
    mp.channel.softness_db = 0.0;
    mp.channel.link_seed = link_seed;
    Medium medium(sched, mp, common::Rng(1));

    StationaryMobility sender_pos({0.0, 0.0});
    StationaryMobility receiver_pos({62.0, 0.0});
    int received = 0;
    medium.add_node(&sender_pos, nullptr);
    medium.add_node(&receiver_pos, [&](const FramePtr&, NodeId) {
      ++received;
    });

    for (int i = 0; i < kFrames; ++i) {
      sched.schedule_at(TimePoint{i * 1'000'000}, [&medium] {
        auto f = std::make_shared<Frame>();
        f->sender = 0;
        f->payload = common::Bytes(100, 0x7);
        f->kind = "shadow";
        medium.transmit(f);
      });
    }
    sched.run();

    if (received == 0 || received == kFrames) ++all_or_nothing;
    if (received == kFrames) ++delivered_links;
  }
  EXPECT_EQ(all_or_nothing, 24);  // no per-frame refading
  EXPECT_GT(delivered_links, 0);  // some links shadow open...
  EXPECT_LT(delivered_links, 24); // ...and some shadow closed
}

// ---------------------------------------------------------------------
// Mixed-range radios (hetero.radio plumbing).
// ---------------------------------------------------------------------

TEST(HeteroRadios, RangeFactorsAreDirectionalAndDeterministic) {
  Scheduler sched;
  Medium::Params mp;
  mp.range_m = 60.0;
  mp.loss_rate = 0.0;
  Medium medium(sched, mp, common::Rng(1));

  StationaryMobility a({0.0, 0.0});
  StationaryMobility b({40.0, 0.0});
  int b_received = 0;
  medium.add_node(&a, nullptr);
  medium.add_node(&b, [&](const FramePtr&, NodeId) { ++b_received; });

  // Halve a's radio: 30 m reaches nobody at 40 m, while b still hears
  // 60 m — in_range and the neighbor/degree queries turn directional.
  medium.set_node_range_factor(0, 0.5);
  EXPECT_DOUBLE_EQ(medium.range_of(0), 30.0);
  EXPECT_FALSE(medium.in_range(0, 1));
  EXPECT_TRUE(medium.in_range(1, 0));
  EXPECT_EQ(medium.degree_of(0), 0u);
  EXPECT_EQ(medium.degree_of(1), 1u);
  EXPECT_TRUE(medium.neighbors_of(0).empty());

  // And delivery honors the sender's scaled range.
  auto f = std::make_shared<Frame>();
  f->sender = 0;
  f->payload = common::Bytes(10, 0x1);
  f->kind = "short";
  medium.transmit(f);
  sched.run();
  EXPECT_EQ(b_received, 0);

  medium.set_node_range_factor(0, 1.0);
  auto g = std::make_shared<Frame>();
  g->sender = 0;
  g->payload = common::Bytes(10, 0x2);
  g->kind = "full";
  medium.transmit(g);
  sched.run();
  EXPECT_EQ(b_received, 1);

  EXPECT_THROW(medium.set_node_range_factor(0, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Model registry.
// ---------------------------------------------------------------------

TEST(ChannelRegistry, KnownModelsAndErrors) {
  EXPECT_EQ(channel_model_names(),
            (std::vector<std::string>{"log-distance", "unit-disk"}));
  ChannelParams cp;
  cp.model = "free-space-nonsense";
  EXPECT_THROW(make_channel_model(cp), std::invalid_argument);
  EXPECT_TRUE(make_channel_model(ChannelParams{})->deterministic_reference());
}

}  // namespace
}  // namespace dapes::sim

// ---------------------------------------------------------------------
// loss.sweep determinism: bit-identical results for any --jobs value.
// ---------------------------------------------------------------------

namespace dapes::harness {
namespace {

TEST(LossSweepFamily, JobsOneAndEightBitIdentical) {
  SweepSpec spec;
  spec.title = "loss.sweep jobs identity";
  spec.base.files = 1;
  spec.base.file_size_bytes = 4 * 1024;
  spec.base.sim_limit_s = 20.0;
  spec.base.seed = 42;
  spec.trials = 2;
  spec.axis.label = "alpha";
  spec.axis.values = {2.5, 4.0};
  spec.axis.apply = [](ScenarioParams& p, double x) {
    p.channel.path_loss_exponent = x;
  };
  spec.series.push_back({"logdist", ProtocolNames::kLossSweep,
                         [](ScenarioParams& p) {
                           p.channel.shadowing_sigma_db = 5.0;
                         }});
  spec.series.push_back({"hetero", ProtocolNames::kHeteroRadio,
                         [](ScenarioParams& p) {
                           p.channel.model = "log-distance";
                         }});
  spec.metrics = {download_time_metric(), transmissions_k_metric(),
                  completion_metric()};

  SweepResult serial = run_sweep(spec, TrialRunner(1));
  SweepResult parallel = run_sweep(spec, TrialRunner(8));
  ASSERT_EQ(serial.values.size(), parallel.values.size());
  for (size_t m = 0; m < serial.values.size(); ++m) {
    for (size_t s = 0; s < serial.values[m].size(); ++s) {
      for (size_t x = 0; x < serial.values[m][s].size(); ++x) {
        // Exact double equality: the engine's contract is bit-identity,
        // not tolerance.
        EXPECT_EQ(serial.values[m][s][x], parallel.values[m][s][x])
            << "metric=" << m << " series=" << s << " x=" << x;
      }
    }
  }
}

}  // namespace
}  // namespace dapes::harness
