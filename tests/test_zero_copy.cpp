// Zero-copy invariants of the wire layer, asserted end-to-end through the
// engine via the codec counters (ISSUE 2 acceptance criteria):
//   * one broadcast frame is serialized exactly once, no matter how many
//     nodes overhear it;
//   * each receiving node decodes a frame at most once;
//   * forwarding an unmodified Data performs zero re-serialization — the
//     cached wire (and the underlying frame buffer) is reused;
//   * the Content Store shares the decoded packet instead of deep-copying.
#include <gtest/gtest.h>

#include "ndn/face.hpp"
#include "ndn/forwarder.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::ndn {
namespace {

using common::bytes_of;

struct ZeroCopyTest : ::testing::Test {
  sim::Scheduler sched;
  sim::StationaryMobility pos_a{{0, 0}};
  sim::StationaryMobility pos_b{{10, 0}};
  sim::StationaryMobility pos_c{{20, 0}};
  common::Rng rng{99};

  void SetUp() override { codec_counters().reset(); }
  void TearDown() override { codec_counters().reset(); }

  sim::Medium::Params params() {
    sim::Medium::Params p;
    p.range_m = 100;
    p.loss_rate = 0.0;
    return p;
  }

  std::vector<std::shared_ptr<sim::Radio>> radios;

  Data make_data(const std::string& uri) {
    Data d{Name(uri)};
    d.set_content(bytes_of("zero-copy-payload"));
    d.set_freshness(common::Duration::seconds(100.0));
    return d;
  }
};

TEST_F(ZeroCopyTest, BroadcastEncodedOnceDecodedOncePerReceiver) {
  sim::Medium medium(sched, params(), rng.fork());
  sim::NodeId a = medium.add_node(&pos_a, nullptr);

  // Two overhearing nodes, each with its own WifiFace.
  std::vector<std::shared_ptr<WifiFace>> receivers;
  std::vector<Data> received;
  for (auto* pos : {&pos_b, &pos_c}) {
    auto idx = receivers.size();
    sim::NodeId node = medium.add_node(
        pos, [this, idx, &receivers](const sim::FramePtr& frame, sim::NodeId) {
          receivers[idx]->on_frame(frame);
        });
    auto radio = std::make_shared<sim::Radio>(sched, medium, node, rng.fork());
    auto face = std::make_shared<WifiFace>(sched, *radio, node, rng.fork(),
                                           common::Duration{0});
    face->set_receive_handlers(nullptr,
                               [&received](const Data& d) { received.push_back(d); });
    radios.push_back(std::move(radio));
    receivers.push_back(std::move(face));
  }

  sim::Radio radio_a(sched, medium, a, rng.fork());
  WifiFace sender(sched, radio_a, a, rng.fork(), common::Duration{0});
  sender.send_data(make_data("/zc/frame/0"));
  sched.run();

  ASSERT_EQ(received.size(), 2u);
  auto& c = codec_counters();
  // One serialization for the broadcast, regardless of receiver count.
  EXPECT_EQ(c.data_encodes.load(), 1u);
  // Each receiving node decoded the frame exactly once.
  EXPECT_EQ(c.data_decodes.load(), 2u);

  // Both decoded packets are views into the same transmitted buffer.
  ASSERT_TRUE(received[0].has_wire());
  ASSERT_TRUE(received[1].has_wire());
  EXPECT_EQ(received[0].wire().data(), received[1].wire().data());
}

TEST_F(ZeroCopyTest, ForwardingUnmodifiedDataNeverReserializes) {
  sim::Medium medium(sched, params(), rng.fork());

  // Node A: application + forwarder. Node B: responder face.
  Forwarder fw(sched);
  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  sim::Radio radio_a(sched, medium, a, rng.fork());
  auto wifi = std::make_shared<WifiFace>(sched, radio_a, a, rng.fork(),
                                         common::Duration{0});
  auto app = std::make_shared<AppFace>();
  std::vector<Data> app_received;
  app->set_app_handlers(nullptr,
                        [&](const Data& d) { app_received.push_back(d); });
  fw.add_face(wifi);
  fw.add_face(app);

  // Express an Interest so the returning Data has a PIT entry.
  Interest interest(Name("/zc/fwd/0"));
  interest.set_nonce(7);
  app->express(interest);

  // The Data arrives from the network as a decoded frame.
  Data origin = make_data("/zc/fwd/0");
  common::BufferSlice frame_wire = origin.wire();
  codec_counters().reset();

  wifi->on_frame([&] {
    auto frame = std::make_shared<sim::Frame>();
    frame->sender = 1;
    frame->payload = frame_wire;
    frame->kind = "ndn-data";
    return frame;
  }());
  sched.run();

  // The forwarder delivered it to the app face and cached it in the CS.
  ASSERT_EQ(app_received.size(), 1u);
  EXPECT_TRUE(fw.cs().contains(Name("/zc/fwd/0")));

  auto& c = codec_counters();
  // Exactly one decode (the frame), zero re-encodes anywhere in the
  // pipeline: PIT satisfaction, CS insert, and app delivery all share
  // the decoded packet's cached wire.
  EXPECT_EQ(c.data_decodes.load(), 1u);
  EXPECT_EQ(c.data_encodes.load(), 0u);

  // The delivered Data still carries the original frame buffer.
  ASSERT_TRUE(app_received[0].has_wire());
  EXPECT_EQ(app_received[0].wire().data(), frame_wire.data());

  // Re-broadcasting the unmodified packet reuses the cache too.
  wifi->send_data(app_received[0]);
  sched.run();
  EXPECT_EQ(c.data_encodes.load(), 0u);
  EXPECT_GT(c.wire_cache_hits.load(), 0u);
}

TEST_F(ZeroCopyTest, ContentStoreServesSharedPacket) {
  sim::Scheduler local_sched;
  Forwarder fw(local_sched);
  auto app = std::make_shared<AppFace>();
  std::vector<Data> served;
  app->set_app_handlers(nullptr, [&](const Data& d) { served.push_back(d); });
  fw.add_face(app);

  Data origin = make_data("/zc/cs/0");
  common::BufferSlice wire = origin.wire();
  auto decoded = Data::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  fw.cs().insert(*decoded, local_sched.now());
  codec_counters().reset();

  // A CS hit answers the Interest with the shared packet: no encode, no
  // decode, and the served Data still points at the original buffer.
  Interest interest(Name("/zc/cs/0"));
  interest.set_nonce(11);
  app->express(interest);
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(fw.stats().cs_hits, 1u);
  auto& c = codec_counters();
  EXPECT_EQ(c.data_encodes.load(), 0u);
  EXPECT_EQ(c.data_decodes.load(), 0u);
  ASSERT_TRUE(served[0].has_wire());
  EXPECT_EQ(served[0].wire().data(), wire.data());
}

TEST_F(ZeroCopyTest, MutationInvalidatesWireCache) {
  Data data = make_data("/zc/mut/0");
  common::BufferSlice before = data.wire();
  codec_counters().reset();

  // Unmodified: cache hit, same storage.
  EXPECT_EQ(data.wire().data(), before.data());
  EXPECT_EQ(codec_counters().data_encodes.load(), 0u);

  data.set_content(bytes_of("different"));
  common::BufferSlice after = data.wire();
  EXPECT_EQ(codec_counters().data_encodes.load(), 1u);
  EXPECT_NE(after.data(), before.data());

  // Hop-limit mutation invalidates Interests the same way.
  Interest interest(Name("/zc/mut/i"));
  common::BufferSlice iw = interest.wire();
  interest.set_hop_limit(interest.hop_limit() - 1);
  EXPECT_NE(interest.wire().data(), iw.data());
}

}  // namespace
}  // namespace dapes::ndn
