// Unit tests for the MANET routing protocols: DSDV and DSR.
#include <gtest/gtest.h>

#include "ip/udp.hpp"
#include "manet/dsdv.hpp"
#include "manet/dsr.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::manet {
namespace {

using common::bytes_of;

/// Line topology: each node only reaches its neighbors.
struct LineTest : ::testing::Test {
  sim::Scheduler sched;
  common::Rng rng{13};
  std::vector<std::unique_ptr<sim::StationaryMobility>> positions;
  std::vector<std::unique_ptr<ip::Node>> nodes;

  sim::Medium::Params medium_params() {
    sim::Medium::Params p;
    p.range_m = 50;
    p.loss_rate = 0.0;
    return p;
  }

  template <typename Routing>
  void build_line(sim::Medium& medium, int n, double spacing = 40) {
    for (int i = 0; i < n; ++i) {
      positions.push_back(std::make_unique<sim::StationaryMobility>(
          sim::Vec2{spacing * i, 0}));
      nodes.push_back(std::make_unique<ip::Node>(sched, medium,
                                                 positions.back().get(),
                                                 rng.fork()));
      nodes.back()->set_routing(std::make_unique<Routing>());
    }
  }
};

TEST_F(LineTest, DsdvConvergesOverThreeHops) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsdv>(medium, 4);
  sched.run_until(common::TimePoint{60000000});  // several update periods
  auto* dsdv0 = static_cast<Dsdv*>(nodes[0]->routing());
  EXPECT_TRUE(dsdv0->has_route(nodes[3]->address()));
  EXPECT_EQ(dsdv0->metric(nodes[3]->address()), 3);
  EXPECT_EQ(dsdv0->next_hop(nodes[3]->address()), nodes[1]->address());
}

TEST_F(LineTest, DsdvForwardsDataMultiHop) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsdv>(medium, 4);
  int received = 0;
  nodes[3]->register_handler(ip::Proto::kUdp,
                             [&](const ip::Packet&) { ++received; });
  sched.run_until(common::TimePoint{60000000});
  ip::UdpLite udp(*nodes[0]);
  udp.send(nodes[3]->address(), 1, 1, bytes_of("ping"));
  sched.run_until(common::TimePoint{61000000});
  EXPECT_EQ(received, 1);
}

TEST_F(LineTest, DsdvGeneratesPeriodicOverhead) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsdv>(medium, 2);
  sched.run_until(common::TimePoint{60000000});
  EXPECT_GT(medium.stats().tx_by_kind["dsdv-update"], 10u);
  auto* dsdv = static_cast<Dsdv*>(nodes[0]->routing());
  EXPECT_GT(dsdv->control_messages(), 5u);
}

TEST_F(LineTest, DsdvRouteExpiresWhenSilent) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsdv>(medium, 2);
  sched.run_until(common::TimePoint{30000000});
  auto* dsdv0 = static_cast<Dsdv*>(nodes[0]->routing());
  ASSERT_TRUE(dsdv0->has_route(nodes[1]->address()));
  // Move node 1 out of range; its updates stop arriving.
  positions[1] = std::make_unique<sim::StationaryMobility>(sim::Vec2{5000, 0});
  // Rebuilding the node isn't possible mid-test; instead verify the
  // freshness rule directly: routes older than the lifetime are dead.
  // (Mobility models are owned externally in the real harness.)
  sched.run_until(common::TimePoint{31000000});
  EXPECT_TRUE(dsdv0->has_route(nodes[1]->address()));
}

TEST_F(LineTest, DsrDiscoversAndDelivers) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsr>(medium, 5);
  int received = 0;
  nodes[4]->register_handler(ip::Proto::kUdp,
                             [&](const ip::Packet&) { ++received; });
  ip::UdpLite udp(*nodes[0]);
  sched.schedule(common::Duration::seconds(1.0), [&] {
    udp.send(nodes[4]->address(), 1, 1, bytes_of("4-hop"));
  });
  sched.run_until(common::TimePoint{30000000});
  EXPECT_EQ(received, 1);
  EXPECT_GT(medium.stats().tx_by_kind["dsr-rreq"], 0u);
  EXPECT_GT(medium.stats().tx_by_kind["dsr-rrep"], 0u);
}

TEST_F(LineTest, DsrNoTrafficNoOverhead) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsr>(medium, 4);
  sched.run_until(common::TimePoint{60000000});
  // Reactive: silence costs nothing (contrast with DSDV).
  EXPECT_EQ(medium.stats().transmissions, 0u);
}

TEST_F(LineTest, DsrCachesRoutesFromDiscovery) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsr>(medium, 3);
  int received = 0;
  nodes[2]->register_handler(ip::Proto::kUdp,
                             [&](const ip::Packet&) { ++received; });
  ip::UdpLite udp(*nodes[0]);
  sched.schedule(common::Duration::seconds(1.0), [&] {
    udp.send(nodes[2]->address(), 1, 1, bytes_of("one"));
  });
  sched.run_until(common::TimePoint{10000000});
  uint64_t rreqs_after_first = medium.stats().tx_by_kind["dsr-rreq"];
  // Second datagram rides the cached route: no new discovery.
  udp.send(nodes[2]->address(), 1, 1, bytes_of("two"));
  sched.run_until(common::TimePoint{12000000});
  EXPECT_EQ(received, 2);
  EXPECT_EQ(medium.stats().tx_by_kind["dsr-rreq"], rreqs_after_first);
}

TEST_F(LineTest, DsrReverseRouteLearned) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  build_line<Dsr>(medium, 3);
  ip::UdpLite udp0(*nodes[0]);
  ip::UdpLite udp2(*nodes[2]);
  udp2.bind(1, [&](ip::Address src, uint16_t, const common::Bytes&) {
    // Reply without any discovery of our own: the reverse route was
    // harvested from the delivered packet's source route.
    udp2.send(src, 1, 1, bytes_of("pong"));
  });
  int replies = 0;
  udp0.bind(1, [&](ip::Address, uint16_t, const common::Bytes&) { ++replies; });
  sched.schedule(common::Duration::seconds(1.0), [&] {
    udp0.send(nodes[2]->address(), 1, 1, bytes_of("ping"));
  });
  sched.run_until(common::TimePoint{30000000});
  EXPECT_EQ(replies, 1);
}

TEST(DsrUnit, ExpandingRingGrowsTtl) {
  // Structural check via control message payloads is internal; instead
  // verify discovery eventually succeeds across the maximum route length.
  sim::Scheduler sched;
  common::Rng rng(3);
  sim::Medium::Params mp;
  mp.range_m = 50;
  mp.loss_rate = 0.0;
  sim::Medium medium(sched, mp, rng.fork());
  std::vector<std::unique_ptr<sim::StationaryMobility>> positions;
  std::vector<std::unique_ptr<ip::Node>> nodes;
  for (int i = 0; i < 10; ++i) {
    positions.push_back(std::make_unique<sim::StationaryMobility>(
        sim::Vec2{40.0 * i, 0}));
    nodes.push_back(std::make_unique<ip::Node>(sched, medium,
                                               positions.back().get(),
                                               rng.fork()));
    nodes.back()->set_routing(std::make_unique<Dsr>());
  }
  int received = 0;
  nodes[9]->register_handler(ip::Proto::kUdp,
                             [&](const ip::Packet&) { ++received; });
  ip::UdpLite udp(*nodes[0]);
  sched.schedule(common::Duration::seconds(1.0), [&] {
    udp.send(nodes[9]->address(), 1, 1, bytes_of("far"));
  });
  sched.run_until(common::TimePoint{60000000});
  EXPECT_EQ(received, 1);  // 9 hops: needs the widened rings
}

}  // namespace
}  // namespace dapes::manet
