// Unit tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/scheduler.hpp"

namespace dapes::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(Duration::milliseconds(30), [&] { order.push_back(3); });
  sched.schedule(Duration::milliseconds(10), [&] { order.push_back(1); });
  sched.schedule(Duration::milliseconds(20), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesFireInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule(Duration::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler sched;
  TimePoint seen{};
  sched.schedule(Duration::milliseconds(42), [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen.us, 42000);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  EventId id = sched.schedule(Duration::milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler sched;
  EventId id = sched.schedule(Duration::milliseconds(5), [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(Duration::milliseconds(10), [&] { ++fired; });
  sched.schedule(Duration::milliseconds(30), [&] { ++fired; });
  sched.run_until(TimePoint{20000});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now().us, 20000);
  sched.run_until(TimePoint{40000});
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventAtExactBoundaryRuns) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(Duration::milliseconds(20), [&] { ++fired; });
  sched.run_until(TimePoint{20000});
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(Duration::milliseconds(1), [&] {
    order.push_back(1);
    sched.schedule(Duration::milliseconds(1), [&] { order.push_back(2); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler sched;
  bool fired = false;
  sched.schedule(Duration::milliseconds(-5), [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now().us, 0);
}

TEST(Scheduler, ExecutedCounts) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) {
    sched.schedule(Duration::milliseconds(i), [] {});
  }
  sched.run();
  EXPECT_EQ(sched.executed(), 5u);
}

TEST(Scheduler, PendingExcludesCancelled) {
  Scheduler sched;
  EventId a = sched.schedule(Duration::milliseconds(1), [] {});
  sched.schedule(Duration::milliseconds(2), [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, CancelledFarFutureEventsCompacted) {
  // The 1000-node-scale failure mode: masses of far-future retransmit
  // timers get cancelled long before they would pop, so lazy pop-time
  // removal never reclaims them. Compaction must keep the heap bounded.
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(sched.schedule(Duration::seconds(1000.0 + i), [] {}));
  }
  EXPECT_EQ(sched.queued(), 10000u);
  for (EventId id : ids) sched.cancel(id);
  EXPECT_EQ(sched.pending(), 0u);
  // Everything was cancelled; compaction leaves at most the small
  // below-floor residue it does not bother with.
  EXPECT_LT(sched.queued(), 64u);
}

TEST(Scheduler, RetransmitTimerChurnStaysBounded) {
  // Schedule-then-cancel churn (the retransmit-timer pattern): one live
  // timer at any moment, 100k cancelled ones over time.
  Scheduler sched;
  EventId pending{};
  int fired = 0;
  for (int i = 0; i < 100000; ++i) {
    if (pending.valid()) sched.cancel(pending);
    pending = sched.schedule(Duration::seconds(3600.0), [&] { ++fired; });
    EXPECT_LE(sched.queued(), 64u + 1u) << "iteration " << i;
  }
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CompactionPreservesOrderAndSurvivors) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventId> doomed;
  // Interleave survivors with a cancelled majority big enough to trip
  // compaction, then check the survivors still fire in time order.
  for (int i = 0; i < 200; ++i) {
    int at_ms = 1000 - i;  // reverse order to exercise the heap
    if (i % 10 == 0) {
      sched.schedule(Duration::milliseconds(at_ms),
                     [&order, at_ms] { order.push_back(at_ms); });
    } else {
      doomed.push_back(sched.schedule(Duration::milliseconds(at_ms), [] {
        ADD_FAILURE() << "cancelled event fired";
      }));
    }
  }
  for (EventId id : doomed) sched.cancel(id);
  EXPECT_EQ(sched.pending(), 20u);
  sched.run();
  ASSERT_EQ(order.size(), 20u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(sched.queued(), 0u);
}

TEST(Scheduler, SelfReschedulingChainBounded) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) {
      sched.schedule(Duration::milliseconds(1), tick);
    }
  };
  sched.schedule(Duration::milliseconds(1), tick);
  sched.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.now().us, 100000);
}

}  // namespace
}  // namespace dapes::sim
