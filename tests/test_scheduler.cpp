// Unit tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/scheduler.hpp"

namespace dapes::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(Duration::milliseconds(30), [&] { order.push_back(3); });
  sched.schedule(Duration::milliseconds(10), [&] { order.push_back(1); });
  sched.schedule(Duration::milliseconds(20), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesFireInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule(Duration::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler sched;
  TimePoint seen{};
  sched.schedule(Duration::milliseconds(42), [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen.us, 42000);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  EventId id = sched.schedule(Duration::milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler sched;
  EventId id = sched.schedule(Duration::milliseconds(5), [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(Duration::milliseconds(10), [&] { ++fired; });
  sched.schedule(Duration::milliseconds(30), [&] { ++fired; });
  sched.run_until(TimePoint{20000});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now().us, 20000);
  sched.run_until(TimePoint{40000});
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventAtExactBoundaryRuns) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(Duration::milliseconds(20), [&] { ++fired; });
  sched.run_until(TimePoint{20000});
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(Duration::milliseconds(1), [&] {
    order.push_back(1);
    sched.schedule(Duration::milliseconds(1), [&] { order.push_back(2); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler sched;
  bool fired = false;
  sched.schedule(Duration::milliseconds(-5), [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now().us, 0);
}

TEST(Scheduler, ExecutedCounts) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) {
    sched.schedule(Duration::milliseconds(i), [] {});
  }
  sched.run();
  EXPECT_EQ(sched.executed(), 5u);
}

TEST(Scheduler, PendingExcludesCancelled) {
  Scheduler sched;
  EventId a = sched.schedule(Duration::milliseconds(1), [] {});
  sched.schedule(Duration::milliseconds(2), [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, CancelledFarFutureEventsCompacted) {
  // The 1000-node-scale failure mode: masses of far-future retransmit
  // timers get cancelled long before they would pop, so lazy pop-time
  // removal never reclaims them. Compaction must keep the heap bounded.
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(sched.schedule(Duration::seconds(1000.0 + i), [] {}));
  }
  EXPECT_EQ(sched.queued(), 10000u);
  for (EventId id : ids) sched.cancel(id);
  EXPECT_EQ(sched.pending(), 0u);
  // Everything was cancelled; compaction leaves at most the small
  // below-floor residue it does not bother with.
  EXPECT_LT(sched.queued(), 64u);
}

TEST(Scheduler, RetransmitTimerChurnStaysBounded) {
  // Schedule-then-cancel churn (the retransmit-timer pattern): one live
  // timer at any moment, 100k cancelled ones over time.
  Scheduler sched;
  EventId pending{};
  int fired = 0;
  for (int i = 0; i < 100000; ++i) {
    if (pending.valid()) sched.cancel(pending);
    pending = sched.schedule(Duration::seconds(3600.0), [&] { ++fired; });
    EXPECT_LE(sched.queued(), 64u + 1u) << "iteration " << i;
  }
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CompactionPreservesOrderAndSurvivors) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventId> doomed;
  // Interleave survivors with a cancelled majority big enough to trip
  // compaction, then check the survivors still fire in time order.
  for (int i = 0; i < 200; ++i) {
    int at_ms = 1000 - i;  // reverse order to exercise the heap
    if (i % 10 == 0) {
      sched.schedule(Duration::milliseconds(at_ms),
                     [&order, at_ms] { order.push_back(at_ms); });
    } else {
      doomed.push_back(sched.schedule(Duration::milliseconds(at_ms), [] {
        ADD_FAILURE() << "cancelled event fired";
      }));
    }
  }
  for (EventId id : doomed) sched.cancel(id);
  EXPECT_EQ(sched.pending(), 20u);
  sched.run();
  ASSERT_EQ(order.size(), 20u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(sched.queued(), 0u);
}

TEST(Scheduler, CancelledPileCompactedByAbsoluteCap) {
  // A huge mostly-live heap: the ratio trigger (cancelled > half) never
  // fires, so only the absolute cap (4096 dead entries) bounds the pile.
  Scheduler sched;
  std::vector<EventId> doomed;
  for (int i = 0; i < 10000; ++i) {
    sched.schedule(Duration::seconds(100.0 + i), [] {});
  }
  for (int i = 0; i < 6000; ++i) {
    doomed.push_back(sched.schedule(Duration::seconds(5000.0 + i), [] {}));
  }
  for (EventId id : doomed) sched.cancel(id);
  EXPECT_EQ(sched.pending(), 10000u);
  // Without the absolute cap every dead entry would linger (16000 total);
  // with it, at most one cap's worth of dead entries survives.
  EXPECT_LE(sched.queued(), 10000u + 4096u);
}

TEST(Scheduler, PeekHorizonTracksLiveHead) {
  Scheduler sched;
  EXPECT_EQ(sched.peek_horizon(), Scheduler::kNoHorizon);
  EventId a = sched.schedule(Duration::milliseconds(5), [] {});
  sched.schedule(Duration::milliseconds(9), [] {});
  EXPECT_EQ(sched.peek_horizon().us, 5000);
  // Cancelling the head must move the horizon, not report a dead event.
  sched.cancel(a);
  EXPECT_EQ(sched.peek_horizon().us, 9000);
}

TEST(Scheduler, ClaimTaggedPopsSameInstantRun) {
  Scheduler sched;
  std::vector<int> order;
  const TimePoint at{10000};
  // A claims B; the untagged C blocks the run, so C and the tagged D
  // behind it fire normally (D runs itself when nobody claims it).
  sched.schedule_tagged(at, 1, [&] {
    order.push_back(1);
    std::vector<uint64_t> tags;
    EXPECT_EQ(sched.claim_tagged(at, tags), 1u);
    EXPECT_EQ(tags, (std::vector<uint64_t>{2}));
  });
  sched.schedule_tagged(at, 2, [] { ADD_FAILURE() << "claimed event fired"; });
  sched.schedule_at(at, [&] { order.push_back(3); });
  sched.schedule_tagged(at, 4, [&] { order.push_back(4); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  // The claimed event's work ran under the claimer: it counts executed.
  EXPECT_EQ(sched.executed(), 4u);
}

TEST(Scheduler, ClaimTaggedStopsAtLaterTimestamp) {
  Scheduler sched;
  int later = 0;
  sched.schedule_tagged(TimePoint{10000}, 1, [&] {
    std::vector<uint64_t> tags;
    EXPECT_EQ(sched.claim_tagged(TimePoint{10000}, tags), 0u);
    EXPECT_TRUE(tags.empty());
  });
  sched.schedule_tagged(TimePoint{10001}, 2, [&] { ++later; });
  sched.run();
  EXPECT_EQ(later, 1);
}

TEST(Scheduler, ClaimTaggedSkipsCancelledHead) {
  Scheduler sched;
  const TimePoint at{10000};
  EventId doomed;
  sched.schedule_tagged(at, 1, [&] {
    std::vector<uint64_t> tags;
    // The cancelled tag-2 entry sits between the claimer and tag 3; the
    // claim must step over it, not stop on a dead head.
    EXPECT_EQ(sched.claim_tagged(at, tags), 1u);
    EXPECT_EQ(tags, (std::vector<uint64_t>{3}));
  });
  doomed = sched.schedule_tagged(at, 2, [] {
    ADD_FAILURE() << "cancelled event fired";
  });
  sched.schedule_tagged(at, 3, [] { ADD_FAILURE() << "claimed event fired"; });
  sched.cancel(doomed);
  sched.run();
}

TEST(Scheduler, PhaseStagingMergesInSlotOrder) {
  // Stage from slots in scrambled order; after end_phase the events must
  // fire in *slot* order — the order a serial execution of the phase's
  // items would have produced — not the order the staging happened in.
  Scheduler sched;
  std::vector<int> order;
  const TimePoint at{5000};
  sched.begin_phase(3);
  ASSERT_TRUE(sched.in_phase());
  sched.bind_phase_slot(2);
  sched.schedule_at(at, [&] { order.push_back(2); });
  sched.bind_phase_slot(0);
  sched.schedule_at(at, [&] { order.push_back(0); });
  sched.bind_phase_slot(1);
  sched.schedule_at(at, [&] { order.push_back(1); });
  sched.unbind_phase_slot();
  EXPECT_EQ(sched.end_phase(), 3u);
  EXPECT_FALSE(sched.in_phase());
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Scheduler, PhaseStagedCancelApplies) {
  Scheduler sched;
  int fired = 0;
  EventId victim = sched.schedule(Duration::milliseconds(5), [&] { ++fired; });
  sched.begin_phase(1);
  sched.bind_phase_slot(0);
  EXPECT_TRUE(sched.cancel(victim));
  sched.unbind_phase_slot();
  sched.end_phase();
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, PhaseIdsIndependentOfStagingOrder) {
  // Ids are pre-assigned per slot from a fixed stride: the same slot and
  // offset always yields the same id, regardless of which slot staged
  // first. (Nothing orders on ids, but cancel() keys on them, so they
  // must be reproducible across worker schedules.)
  auto ids_with_order = [](bool reverse) {
    Scheduler sched;
    sched.begin_phase(2);
    uint64_t slot0, slot1;
    if (reverse) {
      sched.bind_phase_slot(1);
      slot1 = sched.schedule_at(TimePoint{1000}, [] {}).value;
      sched.bind_phase_slot(0);
      slot0 = sched.schedule_at(TimePoint{1000}, [] {}).value;
    } else {
      sched.bind_phase_slot(0);
      slot0 = sched.schedule_at(TimePoint{1000}, [] {}).value;
      sched.bind_phase_slot(1);
      slot1 = sched.schedule_at(TimePoint{1000}, [] {}).value;
    }
    sched.unbind_phase_slot();
    sched.end_phase();
    return std::pair{slot0, slot1};
  };
  EXPECT_EQ(ids_with_order(false), ids_with_order(true));
}

TEST(Scheduler, UnboundScheduleDuringPhaseThrows) {
  Scheduler sched;
  sched.begin_phase(1);
  EXPECT_THROW(sched.schedule(Duration::milliseconds(1), [] {}),
               std::logic_error);
  EXPECT_THROW(sched.schedule_tagged(TimePoint{1000}, 1, [] {}),
               std::logic_error);
  sched.end_phase();
  // After the phase the direct path works again.
  sched.schedule(Duration::milliseconds(1), [] {});
  EXPECT_EQ(sched.run(), 1u);
}

TEST(Scheduler, PhasesDoNotNest) {
  Scheduler sched;
  sched.begin_phase(1);
  EXPECT_THROW(sched.begin_phase(1), std::logic_error);
  sched.end_phase();
  EXPECT_THROW(sched.end_phase(), std::logic_error);
}

TEST(Scheduler, CancelForNodeSweepsOnlyThatOwner) {
  Scheduler sched;
  int owned = 0, other = 0, unowned = 0;
  {
    Scheduler::OwnerScope own(sched, 7);
    sched.schedule(Duration::milliseconds(1), [&] { ++owned; });
    sched.schedule(Duration::milliseconds(2), [&] { ++owned; });
  }
  {
    Scheduler::OwnerScope own(sched, 8);
    sched.schedule(Duration::milliseconds(1), [&] { ++other; });
  }
  sched.schedule(Duration::milliseconds(1), [&] { ++unowned; });
  EXPECT_EQ(sched.cancel_for_node(7), 2u);
  // A second sweep finds nothing left to cancel.
  EXPECT_EQ(sched.cancel_for_node(7), 0u);
  sched.run();
  EXPECT_EQ(owned, 0);
  EXPECT_EQ(other, 1);
  EXPECT_EQ(unowned, 1);
}

TEST(Scheduler, OwnershipInheritedByTransitiveSchedules) {
  // Events scheduled *from inside* an owned callback belong to the same
  // owner: a node's retransmit chains die with it even though only the
  // root event was scheduled under an explicit OwnerScope.
  Scheduler sched;
  int fired = 0;
  {
    Scheduler::OwnerScope own(sched, 3);
    sched.schedule(Duration::milliseconds(1), [&] {
      sched.schedule(Duration::milliseconds(1), [&] { ++fired; });
    });
  }
  sched.run_until(TimePoint{1000});  // root fires, child inherits owner 3
  EXPECT_EQ(sched.cancel_for_node(3), 1u);
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, OwnerScopeRestoresPreviousOwner) {
  Scheduler sched;
  EXPECT_EQ(sched.current_owner(), Scheduler::kNoOwner);
  {
    Scheduler::OwnerScope outer(sched, 1);
    EXPECT_EQ(sched.current_owner(), 1u);
    {
      Scheduler::OwnerScope inner(sched, 2);
      EXPECT_EQ(sched.current_owner(), 2u);
    }
    EXPECT_EQ(sched.current_owner(), 1u);
  }
  EXPECT_EQ(sched.current_owner(), Scheduler::kNoOwner);
}

TEST(Scheduler, CancelForNodeSkipsTaggedDeliveries) {
  // Tagged events model in-flight frames: they must survive the sender's
  // sweep (the medium resolves dead senders at delivery time instead).
  Scheduler sched;
  int delivered = 0;
  {
    Scheduler::OwnerScope own(sched, 5);
    sched.schedule_tagged(TimePoint{1000}, 42, [&] { ++delivered; });
  }
  EXPECT_EQ(sched.cancel_for_node(5), 0u);
  sched.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Scheduler, CancelForNodeRejectsBadArgs) {
  Scheduler sched;
  EXPECT_THROW(sched.cancel_for_node(Scheduler::kNoOwner),
               std::invalid_argument);
  sched.begin_phase(1);
  EXPECT_THROW(sched.cancel_for_node(0), std::logic_error);
  sched.end_phase();
}

TEST(Scheduler, CancelForNodeComposesWithCompaction) {
  // A sweep large enough to trip the compaction floor must still cancel
  // every owned event and leave survivors intact (the sweep collects ids
  // before cancelling precisely because compaction rewrites the heap).
  Scheduler sched;
  int owned = 0, kept = 0;
  {
    Scheduler::OwnerScope own(sched, 9);
    for (int i = 0; i < 500; ++i) {
      sched.schedule(Duration::milliseconds(1 + i), [&] { ++owned; });
    }
  }
  for (int i = 0; i < 10; ++i) {
    sched.schedule(Duration::milliseconds(1 + i), [&] { ++kept; });
  }
  EXPECT_EQ(sched.cancel_for_node(9), 500u);
  sched.run();
  EXPECT_EQ(owned, 0);
  EXPECT_EQ(kept, 10);
}

TEST(Scheduler, SelfReschedulingChainBounded) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) {
      sched.schedule(Duration::milliseconds(1), tick);
    }
  };
  sched.schedule(Duration::milliseconds(1), tick);
  sched.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.now().us, 100000);
}

}  // namespace
}  // namespace dapes::sim
