// Unit tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace dapes::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(Duration::milliseconds(30), [&] { order.push_back(3); });
  sched.schedule(Duration::milliseconds(10), [&] { order.push_back(1); });
  sched.schedule(Duration::milliseconds(20), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesFireInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule(Duration::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler sched;
  TimePoint seen{};
  sched.schedule(Duration::milliseconds(42), [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen.us, 42000);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  EventId id = sched.schedule(Duration::milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler sched;
  EventId id = sched.schedule(Duration::milliseconds(5), [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(Duration::milliseconds(10), [&] { ++fired; });
  sched.schedule(Duration::milliseconds(30), [&] { ++fired; });
  sched.run_until(TimePoint{20000});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now().us, 20000);
  sched.run_until(TimePoint{40000});
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventAtExactBoundaryRuns) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(Duration::milliseconds(20), [&] { ++fired; });
  sched.run_until(TimePoint{20000});
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(Duration::milliseconds(1), [&] {
    order.push_back(1);
    sched.schedule(Duration::milliseconds(1), [&] { order.push_back(2); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler sched;
  bool fired = false;
  sched.schedule(Duration::milliseconds(-5), [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now().us, 0);
}

TEST(Scheduler, ExecutedCounts) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) {
    sched.schedule(Duration::milliseconds(i), [] {});
  }
  sched.run();
  EXPECT_EQ(sched.executed(), 5u);
}

TEST(Scheduler, PendingExcludesCancelled) {
  Scheduler sched;
  EventId a = sched.schedule(Duration::milliseconds(1), [] {});
  sched.schedule(Duration::milliseconds(2), [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, SelfReschedulingChainBounded) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) {
      sched.schedule(Duration::milliseconds(1), tick);
    }
  };
  sched.schedule(Duration::milliseconds(1), tick);
  sched.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.now().us, 100000);
}

}  // namespace
}  // namespace dapes::sim
