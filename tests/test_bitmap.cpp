// Unit tests for CollectionLayout and Bitmap (paper §IV-D data
// advertisements).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dapes/bitmap.hpp"

namespace dapes::core {
namespace {

CollectionLayout two_file_layout() {
  // Mirrors the paper's Fig. 4 example: bridge-picture has 100 packets,
  // bridge-location has 2; bit 100 is bridge-location/0.
  return CollectionLayout({{"bridge-picture", 100}, {"bridge-location", 2}});
}

TEST(CollectionLayout, PaperFigureExample) {
  CollectionLayout layout = two_file_layout();
  EXPECT_EQ(layout.total_packets(), 102u);
  EXPECT_EQ(layout.index_of("bridge-picture", 0), 0u);
  EXPECT_EQ(layout.index_of("bridge-picture", 99), 99u);
  EXPECT_EQ(layout.index_of("bridge-location", 0), 100u);
  EXPECT_EQ(layout.index_of("bridge-location", 1), 101u);
}

TEST(CollectionLayout, UnknownFileOrSeq) {
  CollectionLayout layout = two_file_layout();
  EXPECT_FALSE(layout.index_of("nope", 0).has_value());
  EXPECT_FALSE(layout.index_of("bridge-picture", 100).has_value());
  EXPECT_FALSE(layout.index_of("bridge-location", 2).has_value());
}

TEST(CollectionLayout, LocateInverse) {
  CollectionLayout layout = two_file_layout();
  for (size_t i : {0u, 1u, 99u, 100u, 101u}) {
    auto loc = layout.locate(i);
    EXPECT_EQ(layout.index_of(loc.file_name, loc.seq), i);
  }
  EXPECT_THROW(layout.locate(102), std::out_of_range);
}

class LayoutRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(LayoutRoundTrip, IndexLocateBijection) {
  // Property: locate(index_of(f, s)) == (f, s) across many shapes.
  common::Rng rng(GetParam());
  std::vector<CollectionLayout::FileEntry> files;
  size_t n = 1 + rng.next_below(8);
  for (size_t i = 0; i < n; ++i) {
    files.push_back({"f" + std::to_string(i), 1 + (size_t)rng.next_below(50)});
  }
  CollectionLayout layout(files);
  for (size_t i = 0; i < layout.total_packets(); ++i) {
    auto loc = layout.locate(i);
    ASSERT_EQ(layout.index_of(loc.file_name, loc.seq), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LayoutRoundTrip,
                         ::testing::Range<size_t>(1, 12));

TEST(Bitmap, SetTestCount) {
  Bitmap bm(130);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_TRUE(bm.none());
  bm.set(0);
  bm.set(64);
  bm.set(129);
  EXPECT_EQ(bm.count(), 3u);
  EXPECT_TRUE(bm.test(64));
  EXPECT_FALSE(bm.test(1));
  bm.set(64, false);
  EXPECT_EQ(bm.count(), 2u);
}

TEST(Bitmap, OutOfRangeThrows) {
  Bitmap bm(10);
  EXPECT_THROW(bm.test(10), std::out_of_range);
  EXPECT_THROW(bm.set(10), std::out_of_range);
}

TEST(Bitmap, FullAndCompleteness) {
  Bitmap bm(4);
  for (size_t i = 0; i < 4; ++i) bm.set(i);
  EXPECT_TRUE(bm.full());
  EXPECT_DOUBLE_EQ(bm.completeness(), 1.0);
  bm.set(1, false);
  EXPECT_DOUBLE_EQ(bm.completeness(), 0.75);
}

TEST(Bitmap, CountSetAndMissingFrom) {
  Bitmap mine(8), theirs(8);
  mine.set(0);
  mine.set(1);
  mine.set(2);
  theirs.set(1);
  // I have {0,1,2}; they miss {0,2} of those.
  EXPECT_EQ(mine.count_set_and_missing_from(theirs), 2u);
  EXPECT_EQ(theirs.count_set_and_missing_from(mine), 0u);
}

TEST(Bitmap, MissingIndices) {
  Bitmap bm(5);
  bm.set(1);
  bm.set(3);
  EXPECT_EQ(bm.missing_indices(), (std::vector<size_t>{0, 2, 4}));
}

TEST(Bitmap, OrWith) {
  Bitmap a(70), b(70);
  a.set(0);
  b.set(69);
  a.or_with(b);
  EXPECT_TRUE(a.test(0));
  EXPECT_TRUE(a.test(69));
  EXPECT_EQ(a.count(), 2u);
}

class BitmapSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(BitmapSizes, EncodeDecodeRoundTrip) {
  size_t n = GetParam();
  common::Rng rng(n * 31 + 1);
  Bitmap bm(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.chance(0.5)) bm.set(i);
  }
  auto decoded = Bitmap::decode(common::BytesView(bm.encode().data(),
                                                  bm.encode().size()));
  // encode() is called twice above; take a stable copy instead.
  common::Bytes wire = bm.encode();
  decoded = Bitmap::decode(common::BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bm);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitmapSizes,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 100,
                                           1024, 10240));

TEST(Bitmap, DecodeRejectsWrongLength) {
  Bitmap bm(16);
  common::Bytes wire = bm.encode();
  wire.pop_back();
  EXPECT_FALSE(Bitmap::decode(common::BytesView(wire.data(), wire.size()))
                   .has_value());
  wire.push_back(0);
  wire.push_back(0);
  EXPECT_FALSE(Bitmap::decode(common::BytesView(wire.data(), wire.size()))
                   .has_value());
}

TEST(Bitmap, DecodeRejectsTruncatedHeader) {
  common::Bytes tiny = {0, 0};
  EXPECT_FALSE(Bitmap::decode(common::BytesView(tiny.data(), tiny.size()))
                   .has_value());
}

TEST(Bitmap, WireSizeIsCompact) {
  // The paper's point: 10240 packets advertise in ~1.3 KB.
  Bitmap bm(10240);
  EXPECT_EQ(bm.encode().size(), 4u + 1280u);
}

}  // namespace
}  // namespace dapes::core
