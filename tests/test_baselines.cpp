// Unit tests for the IP baselines: Bithoc and Ekta.
#include <gtest/gtest.h>

#include "baselines/bithoc.hpp"
#include "baselines/ekta.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::baselines {
namespace {

struct BaselineTest : ::testing::Test {
  sim::Scheduler sched;
  common::Rng rng{21};
  sim::StationaryMobility pos_a{{100, 100}};
  sim::StationaryMobility pos_b{{130, 100}};
  sim::StationaryMobility pos_c{{160, 100}};

  std::shared_ptr<core::Collection> collection() {
    crypto::KeyChain kc;
    auto key = kc.generate_key("/p");
    return core::Collection::create_synthetic(
        ndn::Name("/c"), {{"f0", 8 * 1024}, {"f1", 4 * 1024}}, 1024,
        core::MetadataFormat::kPacketDigest, key);
  }

  sim::Medium::Params medium_params() {
    sim::Medium::Params p;
    p.range_m = 50;
    p.loss_rate = 0.05;
    return p;
  }
};

TEST_F(BaselineTest, BithocTwoPeersComplete) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  auto col = collection();
  BithocPeer seed(sched, medium, &pos_a, rng.fork(), {}, col, true);
  BithocPeer leech(sched, medium, &pos_b, rng.fork(), {}, col, false);
  bool cb_fired = false;
  leech.set_completion_callback([&](common::TimePoint) { cb_fired = true; });
  seed.start();
  leech.start();
  sched.run_until(common::TimePoint{120000000});
  EXPECT_TRUE(leech.complete());
  EXPECT_TRUE(cb_fired);
  EXPECT_DOUBLE_EQ(leech.progress(), 1.0);
  EXPECT_EQ(leech.stats().pieces_received, col->total_packets());
  EXPECT_GE(seed.stats().pieces_served, col->total_packets());
}

TEST_F(BaselineTest, BithocSeedIsCompleteFromStart) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  auto col = collection();
  BithocPeer seed(sched, medium, &pos_a, rng.fork(), {}, col, true);
  EXPECT_TRUE(seed.complete());
  EXPECT_DOUBLE_EQ(seed.progress(), 1.0);
}

TEST_F(BaselineTest, BithocHellosCarryBitmaps) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  auto col = collection();
  BithocPeer seed(sched, medium, &pos_a, rng.fork(), {}, col, true);
  BithocPeer leech(sched, medium, &pos_b, rng.fork(), {}, col, false);
  seed.start();
  leech.start();
  sched.run_until(common::TimePoint{10000000});
  EXPECT_GT(medium.stats().tx_by_kind["bithoc-hello"], 0u);
  EXPECT_GT(seed.stats().hellos_sent, 0u);
}

TEST_F(BaselineTest, BithocRelaySpreadsHellosTwoHops) {
  // a - b - c with a and c out of range: c learns a's pieces through the
  // scoped flood relayed by b.
  sim::StationaryMobility far_c{{190, 100}};
  sim::Medium::Params mp;
  mp.range_m = 48;  // a<->b and b<->c in range (30/60m apart), a<->c not
  mp.loss_rate = 0.0;
  sim::StationaryMobility mid_b{{145, 100}};
  sim::Medium medium(sched, mp, rng.fork());
  auto col = collection();
  BithocPeer a(sched, medium, &pos_a, rng.fork(), {}, col, true);
  BithocPeer b(sched, medium, &mid_b, rng.fork(), {}, col, false);
  BithocPeer c(sched, medium, &far_c, rng.fork(), {}, col, false);
  a.start();
  b.start();
  c.start();
  sched.run_until(common::TimePoint{300000000});
  EXPECT_TRUE(b.complete());
  EXPECT_TRUE(c.complete());
}

TEST_F(BaselineTest, EktaTwoPeersComplete) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  auto col = collection();
  EktaPeer seed(sched, medium, &pos_a, rng.fork(), {}, col, true);
  EktaPeer leech(sched, medium, &pos_b, rng.fork(), {}, col, false);
  for (auto* x : {&seed, &leech}) {
    x->add_member(seed.address());
    x->add_member(leech.address());
  }
  seed.start();
  leech.start();
  sched.run_until(common::TimePoint{200000000});
  EXPECT_TRUE(leech.complete());
  EXPECT_EQ(leech.stats().pieces_received, col->total_packets());
}

TEST_F(BaselineTest, EktaPublishesAndLooksUpThroughDht) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  auto col = collection();
  EktaPeer seed(sched, medium, &pos_a, rng.fork(), {}, col, true);
  EktaPeer mid(sched, medium, &pos_b, rng.fork(), {}, col, false);
  EktaPeer leech(sched, medium, &pos_c, rng.fork(), {}, col, false);
  for (auto* x : {&seed, &mid, &leech}) {
    for (auto* y : {&seed, &mid, &leech}) x->add_member(y->address());
  }
  seed.start();
  mid.start();
  leech.start();
  sched.run_until(common::TimePoint{300000000});
  EXPECT_TRUE(mid.complete());
  EXPECT_TRUE(leech.complete());
  // DHT control traffic flowed.
  EXPECT_GT(seed.stats().puts_sent + mid.stats().puts_sent +
                leech.stats().puts_sent,
            0u);
}

TEST_F(BaselineTest, EktaDhtIdsAreStable) {
  EXPECT_EQ(EktaPeer::dht_id(5), EktaPeer::dht_id(5));
  EXPECT_NE(EktaPeer::dht_id(5), EktaPeer::dht_id(6));
}

TEST_F(BaselineTest, StateBytesNonzeroOnceRunning) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  auto col = collection();
  BithocPeer seed(sched, medium, &pos_a, rng.fork(), {}, col, true);
  BithocPeer leech(sched, medium, &pos_b, rng.fork(), {}, col, false);
  seed.start();
  leech.start();
  sched.run_until(common::TimePoint{30000000});
  EXPECT_GT(leech.state_bytes(), 0u);
}

}  // namespace
}  // namespace dapes::baselines
