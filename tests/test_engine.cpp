// Tests for the experiment engine: driver registry, seed derivation,
// parallel trial execution (determinism under any --jobs), and sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>

#include "common/rng.hpp"
#include "harness/driver.hpp"
#include "harness/scale.hpp"
#include "harness/sweep.hpp"
#include "harness/trial_runner.hpp"

namespace dapes::harness {
namespace {

ScenarioParams tiny_params() {
  ScenarioParams p;
  p.files = 2;
  p.file_size_bytes = 4 * 1024;
  p.mobile_downloaders = 6;
  p.stationary_downloaders = 2;
  p.pure_forwarders = 2;
  p.dapes_intermediates = 2;
  p.wifi_range_m = 80.0;
  p.data_rate_bps = 11e6;
  p.sim_limit_s = 600.0;
  p.seed = 3;
  return p;
}

void expect_equal(const TrialResult& a, const TrialResult& b) {
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
  EXPECT_DOUBLE_EQ(a.completion_fraction, b.completion_fraction);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.tx_by_kind, b.tx_by_kind);
  EXPECT_EQ(a.collided_frames, b.collided_frames);
  EXPECT_EQ(a.peak_state_bytes, b.peak_state_bytes);
  EXPECT_EQ(a.total_state_bytes, b.total_state_bytes);
  EXPECT_EQ(a.peak_knowledge_bytes, b.peak_knowledge_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.forward_accuracy, b.forward_accuracy);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.system_calls, b.system_calls);
  EXPECT_EQ(a.page_faults, b.page_faults);
}

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(common::derive_seed(1, 0), common::derive_seed(1, 0));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100; ++i) seen.insert(common::derive_seed(42, i));
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_NE(common::derive_seed(1, 0), common::derive_seed(2, 0));
}

TEST(Registry, WellKnownDriversRegistered) {
  auto& reg = ProtocolDriverRegistry::instance();
  for (const char* name :
       {ProtocolNames::kDapes, ProtocolNames::kBithoc, ProtocolNames::kEkta,
        ProtocolNames::kRealWorldCarrier, ProtocolNames::kRealWorldRepository,
        ProtocolNames::kRealWorldMoving, ProtocolNames::kScaleField,
        ProtocolNames::kScaleMedium}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
    EXPECT_EQ(reg.get(name).name(), name);
  }
  EXPECT_GE(reg.names().size(), 8u);
}

TEST(Registry, UnknownDriverFailsCleanly) {
  auto& reg = ProtocolDriverRegistry::instance();
  EXPECT_EQ(reg.find("no-such-protocol"), nullptr);
  EXPECT_THROW(reg.get("no-such-protocol"), std::out_of_range);
  EXPECT_THROW(run_trial("no-such-protocol", tiny_params()),
               std::out_of_range);
  try {
    reg.get("no-such-protocol");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    // The message names the missing driver and lists the registered ones.
    EXPECT_NE(std::string(e.what()).find("no-such-protocol"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dapes"), std::string::npos);
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  auto& reg = ProtocolDriverRegistry::instance();
  EXPECT_THROW(
      reg.add(ProtocolNames::kDapes,
              [](const ScenarioParams& p) { return run_dapes_trial(p); }),
      std::invalid_argument);
}

TEST(RunTrial, NamedEntryPointMatchesDirectCall) {
  ScenarioParams p = tiny_params();
  TrialResult via_registry = run_trial(ProtocolNames::kDapes, p);
  TrialResult direct = run_dapes_trial(p);
  expect_equal(via_registry, direct);
}

TEST(TrialRunner, ParallelResultsIdenticalToSerial) {
  // The acceptance bar for the engine: same seed + same params give
  // bit-identical TrialResult vectors at --jobs 1 and --jobs 8.
  const auto& driver =
      ProtocolDriverRegistry::instance().get(ProtocolNames::kDapes);
  auto serial = TrialRunner(1).run(driver, tiny_params(), 6);
  auto parallel = TrialRunner(8).run(driver, tiny_params(), 6);
  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(parallel.size(), 6u);
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_equal(serial[i], parallel[i]);
  }
}

TEST(TrialRunner, TrialsUseDistinctDerivedSeeds) {
  auto results = TrialRunner(1).run(ProtocolNames::kDapes, tiny_params(), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].transmissions, results[1].transmissions);
}

TEST(TrialRunner, ZeroAndNegativeJobsMeanHardware) {
  EXPECT_GE(TrialRunner(0).jobs(), 1);
  EXPECT_GE(TrialRunner(-3).jobs(), 1);
  EXPECT_EQ(TrialRunner(5).jobs(), 5);
}

TEST(TrialRunner, ForEachIndexPropagatesExceptions) {
  TrialRunner runner(4);
  EXPECT_THROW(runner.for_each_index(
                   16,
                   [](size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

SweepSpec tiny_sweep() {
  SweepSpec spec;
  spec.title = "engine-test";
  spec.base = tiny_params();
  spec.axis.values = {60.0, 80.0};
  spec.series = {{"dapes", ProtocolNames::kDapes, nullptr},
                 {"dapes-singlehop", ProtocolNames::kDapes,
                  [](ScenarioParams& p) { p.peer.multihop = false; }}};
  spec.metrics = {download_time_metric(), transmissions_k_metric(),
                  completion_metric()};
  spec.trials = 2;
  return spec;
}

TEST(Sweep, ParallelGridIdenticalToSerial) {
  SweepResult serial = run_sweep(tiny_sweep(), TrialRunner(1));
  SweepResult parallel = run_sweep(tiny_sweep(), TrialRunner(8));
  ASSERT_EQ(serial.values.size(), parallel.values.size());
  for (size_t m = 0; m < serial.values.size(); ++m) {
    for (size_t s = 0; s < serial.values[m].size(); ++s) {
      for (size_t x = 0; x < serial.values[m][s].size(); ++x) {
        EXPECT_DOUBLE_EQ(serial.values[m][s][x], parallel.values[m][s][x])
            << "metric " << m << " series " << s << " x " << x;
      }
    }
  }
}

TEST(Sweep, UnknownDriverFailsBeforeRunning) {
  SweepSpec spec = tiny_sweep();
  spec.series.push_back({"broken", "no-such-protocol", nullptr});
  EXPECT_THROW(run_sweep(spec, TrialRunner(1)), std::out_of_range);
}

std::string render(const SweepResult& r, OutputFormat format) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  write_sweep(r, format, f);
  std::fseek(f, 0, SEEK_SET);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

TEST(Sweep, EmittersProduceAllFormats) {
  SweepSpec spec = tiny_sweep();
  spec.trials = 1;
  spec.metrics = {download_time_metric()};
  SweepResult r = run_sweep(spec, TrialRunner(0));

  std::string text = render(r, OutputFormat::kText);
  EXPECT_NE(text.find("=== engine-test ==="), std::string::npos);
  EXPECT_NE(text.find("dapes-singlehop"), std::string::npos);

  std::string csv = render(r, OutputFormat::kCsv);
  EXPECT_EQ(csv.rfind("metric,series,range_m,value\n", 0), 0u);
  EXPECT_NE(csv.find("download_s,dapes,60,"), std::string::npos);

  std::string json = render(r, OutputFormat::kJson);
  EXPECT_NE(json.find("\"title\": \"engine-test\""), std::string::npos);
  EXPECT_NE(json.find("\"download_s\""), std::string::npos);
}

TEST(ApplyScale, PreservesTotalsAndDensity) {
  ScenarioParams p = tiny_params();
  apply_scale(p, 44);
  EXPECT_EQ(p.stationary_downloaders + p.mobile_downloaders +
                p.pure_forwarders + p.dapes_intermediates,
            44);
  EXPECT_DOUBLE_EQ(p.field_m, 300.0);

  apply_scale(p, 1000);
  const int total = p.stationary_downloaders + p.mobile_downloaders +
                    p.pure_forwarders + p.dapes_intermediates;
  EXPECT_EQ(total, 1000);
  // Constant density: area / node is the Fig. 7 ratio.
  EXPECT_NEAR(p.field_m * p.field_m / total, 300.0 * 300.0 / 44.0, 1.0);
}

// The scale.field determinism regression: one sweep over the new family
// (node-count axis, waypoint + group mobility) rendered to JSON must be
// bit-identical at --jobs 1 and --jobs 8.
TEST(Sweep, ScaleFieldJsonBitIdenticalAcrossJobs) {
  SweepSpec spec;
  spec.title = "scale-field-determinism";
  spec.base = tiny_params();
  spec.base.files = 1;
  spec.base.file_size_bytes = 4 * 1024;
  spec.base.sim_limit_s = 300.0;
  spec.axis.label = "nodes";
  spec.axis.values = {20.0, 44.0};
  spec.axis.apply = apply_scale;
  spec.series = {{"waypoint", ProtocolNames::kScaleField,
                  [](ScenarioParams& p) {
                    p.mobility = MobilityKind::kRandomWaypoint;
                  }},
                 {"group", ProtocolNames::kScaleField,
                  [](ScenarioParams& p) {
                    p.mobility = MobilityKind::kGroup;
                  }},
                 {"medium-stress", ProtocolNames::kScaleMedium,
                  [](ScenarioParams& p) {
                    p.mobility = MobilityKind::kRandomWaypoint;
                    p.sim_limit_s = 5.0;
                  }}};
  spec.metrics = {download_time_metric(), transmissions_k_metric(),
                  completion_metric()};
  spec.trials = 2;

  std::string serial = render(run_sweep(spec, TrialRunner(1)),
                              OutputFormat::kJson);
  std::string parallel = render(run_sweep(spec, TrialRunner(8)),
                                OutputFormat::kJson);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Sweep, ParseOutputFormat) {
  EXPECT_EQ(parse_output_format("text"), OutputFormat::kText);
  EXPECT_EQ(parse_output_format("csv"), OutputFormat::kCsv);
  EXPECT_EQ(parse_output_format("json"), OutputFormat::kJson);
  EXPECT_EQ(parse_output_format("xml"), std::nullopt);
}

}  // namespace
}  // namespace dapes::harness
