// Property tests: the spatial-grid medium is observably *identical* to
// the retained brute-force reference.
//
// Each case builds the same randomized world twice — same node count,
// field, range, loss, capture, mobility mix (stationary / random
// direction / random waypoint / group convoys), same per-node RNG streams
// and the same scripted event list — once with the grid (the default) and
// once with Params::brute_force. Every observable is then compared:
// per-frame receiver sets and delivery order, TxReports, neighbor sets,
// carrier-sense answers, and the aggregate MediumStats. Any divergence in
// pruning, iteration order, or RNG draw order shows up as a log mismatch.
//
// The world construction is shared with the channel-layer suite
// (tests/medium_test_world.hpp), whose golden-hash test additionally pins
// these exact worlds to their pre-channel-layer behavior.
#include <gtest/gtest.h>

#include "medium_test_world.hpp"

namespace dapes::sim {
namespace {

using testworld::World;
using testworld::build_world;

class MediumEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MediumEquivalence, GridMatchesBruteForceExactly) {
  World grid, brute;
  build_world(grid, GetParam(), /*brute=*/false);
  build_world(brute, GetParam(), /*brute=*/true);
  grid.sched.run();
  brute.sched.run();

  ASSERT_EQ(grid.log.size(), brute.log.size());
  for (size_t i = 0; i < grid.log.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(grid.log[i], brute.log[i]);
  }

  const MediumStats& g = grid.medium->stats();
  const MediumStats& b = brute.medium->stats();
  EXPECT_EQ(g.transmissions, b.transmissions);
  EXPECT_EQ(g.deliveries, b.deliveries);
  EXPECT_EQ(g.losses, b.losses);
  EXPECT_EQ(g.collision_drops, b.collision_drops);
  EXPECT_EQ(g.collided_frames, b.collided_frames);
  EXPECT_EQ(g.bytes_sent, b.bytes_sent);
  EXPECT_EQ(g.tx_by_kind, b.tx_by_kind);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediumEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace dapes::sim
