// Property tests: the spatial-grid medium is observably *identical* to
// the retained brute-force reference.
//
// Each case builds the same randomized world twice — same node count,
// field, range, loss, capture, mobility mix (stationary / random
// direction / random waypoint / group convoys), same per-node RNG streams
// and the same scripted event list — once with the grid (the default) and
// once with Params::brute_force. Every observable is then compared:
// per-frame receiver sets and delivery order, TxReports, neighbor sets,
// carrier-sense answers, and the aggregate MediumStats. Any divergence in
// pruning, iteration order, or RNG draw order shows up as a log mismatch.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::sim {
namespace {

struct World {
  Scheduler sched;
  std::vector<std::unique_ptr<MobilityModel>> mobility;
  std::vector<std::shared_ptr<MobilityModel>> anchors;
  std::unique_ptr<Medium> medium;
  /// Chronological observation log: deliveries, completion reports and
  /// query answers, formatted so two worlds can be diffed verbatim.
  std::vector<std::string> log;
};

/// Deterministic world construction: every random choice comes from
/// `seed`, and the brute flag is the only difference between the pair.
void build_world(World& w, uint64_t seed, bool brute) {
  common::Rng cfg(seed);  // consumed identically by both worlds

  Medium::Params mp;
  mp.range_m = cfg.uniform(15.0, 90.0);
  mp.loss_rate = std::vector<double>{0.0, 0.1, 0.5}[cfg.next_below(3)];
  mp.capture_ratio = cfg.chance(0.5) ? 0.7 : 0.0;
  mp.brute_force = brute;
  const double field_m = cfg.uniform(80.0, 400.0);
  const Field field{field_m, field_m};
  const size_t n = 5 + cfg.next_below(40);

  w.medium = std::make_unique<Medium>(w.sched, mp,
                                      common::Rng(common::derive_seed(seed, 1)));

  for (size_t i = 0; i < n; ++i) {
    const Vec2 start{cfg.uniform(0.0, field_m), cfg.uniform(0.0, field_m)};
    common::Rng node_rng(common::derive_seed(seed, 100 + i));
    switch (cfg.next_below(4)) {
      case 0:
        w.mobility.push_back(std::make_unique<StationaryMobility>(start));
        break;
      case 1: {
        RandomDirectionMobility::Params p;
        p.field = field;
        w.mobility.push_back(
            std::make_unique<RandomDirectionMobility>(start, p, node_rng));
        break;
      }
      case 2: {
        RandomWaypointMobility::Params p;
        p.field = field;
        p.pause = Duration::seconds(cfg.uniform(0.0, 5.0));
        w.mobility.push_back(
            std::make_unique<RandomWaypointMobility>(start, p, node_rng));
        break;
      }
      default: {
        if (w.anchors.empty() || cfg.chance(0.6)) {
          RandomWaypointMobility::Params p;
          p.field = field;
          w.anchors.push_back(std::make_shared<RandomWaypointMobility>(
              start, p,
              common::Rng(common::derive_seed(seed, 5000 + w.anchors.size()))));
        }
        const Vec2 offset{cfg.uniform(-30.0, 30.0), cfg.uniform(-30.0, 30.0)};
        w.mobility.push_back(std::make_unique<GroupMobility>(
            w.anchors.back(), offset, field));
        break;
      }
    }
    w.medium->add_node(w.mobility.back().get(),
                       [&w, i](const FramePtr& f, NodeId receiver) {
                         w.log.push_back(
                             "rx t=" + std::to_string(w.sched.now().us) +
                             " from=" + std::to_string(f->sender) + " at=" +
                             std::to_string(receiver));
                       });
  }

  // Scripted traffic: bursts of transmissions, many deliberately
  // overlapping (several frames inside the same microsecond-scale
  // window) so collision marking and capture get exercised.
  const int transmissions = 80;
  for (int t = 0; t < transmissions; ++t) {
    const int64_t at_us = static_cast<int64_t>(cfg.next_below(20'000'000));
    const NodeId sender = static_cast<NodeId>(cfg.next_below(n));
    const size_t size = 50 + cfg.next_below(1500);
    w.sched.schedule_at(TimePoint{at_us}, [&w, sender, size, t] {
      auto f = std::make_shared<Frame>();
      f->sender = sender;
      f->payload = common::Bytes(size, static_cast<uint8_t>(t));
      f->kind = "eq";
      w.medium->transmit(f, [&w, t](const Medium::TxReport& r) {
        w.log.push_back("report tx=" + std::to_string(t) +
                        " rcv=" + std::to_string(r.receivers) +
                        " col=" + std::to_string(r.collided) +
                        " lost=" + std::to_string(r.lost) +
                        " del=" + std::to_string(r.delivered));
      });
    });
  }

  // Interleaved connectivity and carrier-sense queries.
  const int queries = 120;
  for (int q = 0; q < queries; ++q) {
    const int64_t at_us = static_cast<int64_t>(cfg.next_below(20'000'000));
    const NodeId node = static_cast<NodeId>(cfg.next_below(n));
    w.sched.schedule_at(TimePoint{at_us}, [&w, node] {
      std::string line = "nbr node=" + std::to_string(node) + " [";
      for (NodeId id : w.medium->neighbors_of(node)) {
        line += std::to_string(id) + ",";
      }
      line += "] deg=" + std::to_string(w.medium->degree_of(node)) +
              " busy=" + std::to_string(w.medium->busy_for(node)) +
              " until=" + std::to_string(w.medium->busy_until(node).us);
      w.log.push_back(line);
    });
  }
}

class MediumEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MediumEquivalence, GridMatchesBruteForceExactly) {
  World grid, brute;
  build_world(grid, GetParam(), /*brute=*/false);
  build_world(brute, GetParam(), /*brute=*/true);
  grid.sched.run();
  brute.sched.run();

  ASSERT_EQ(grid.log.size(), brute.log.size());
  for (size_t i = 0; i < grid.log.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(grid.log[i], brute.log[i]);
  }

  const MediumStats& g = grid.medium->stats();
  const MediumStats& b = brute.medium->stats();
  EXPECT_EQ(g.transmissions, b.transmissions);
  EXPECT_EQ(g.deliveries, b.deliveries);
  EXPECT_EQ(g.losses, b.losses);
  EXPECT_EQ(g.collision_drops, b.collision_drops);
  EXPECT_EQ(g.collided_frames, b.collided_frames);
  EXPECT_EQ(g.bytes_sent, b.bytes_sent);
  EXPECT_EQ(g.tx_by_kind, b.tx_by_kind);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MediumEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace dapes::sim
