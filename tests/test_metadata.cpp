// Unit tests for collection metadata: both encodings, segmentation,
// authentication, and integrity verification (paper §IV-C).
#include <gtest/gtest.h>

#include "dapes/collection.hpp"
#include "dapes/metadata.hpp"

namespace dapes::core {
namespace {

using common::Bytes;
using common::BytesView;
using common::bytes_of;

crypto::PrivateKey test_key() {
  static crypto::KeyChain kc;
  return kc.generate_key("/producer");
}

Metadata sample_metadata(MetadataFormat format) {
  std::vector<FileMetadata> files;
  FileMetadata a;
  a.name = "bridge-picture";
  a.packet_count = 5;
  FileMetadata b;
  b.name = "bridge-location";
  b.packet_count = 2;
  std::vector<crypto::Digest> da, db;
  for (int i = 0; i < 5; ++i) da.push_back(crypto::Sha256::hash("a" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) db.push_back(crypto::Sha256::hash("b" + std::to_string(i)));
  if (format == MetadataFormat::kPacketDigest) {
    a.packet_digests = da;
    b.packet_digests = db;
  } else {
    a.merkle_root = crypto::MerkleTree::compute_root(da);
    b.merkle_root = crypto::MerkleTree::compute_root(db);
  }
  files.push_back(a);
  files.push_back(b);
  return Metadata(ndn::Name("/damaged-bridge-1533783192"), format, files);
}

class MetadataFormats : public ::testing::TestWithParam<MetadataFormat> {};

TEST_P(MetadataFormats, EncodeDecodeRoundTrip) {
  Metadata meta = sample_metadata(GetParam());
  Bytes wire = meta.encode();
  auto decoded = Metadata::decode(BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, meta);
}

TEST_P(MetadataFormats, LayoutMatchesFiles) {
  Metadata meta = sample_metadata(GetParam());
  CollectionLayout layout = meta.layout();
  EXPECT_EQ(layout.total_packets(), 7u);
  EXPECT_EQ(meta.total_packets(), 7u);
  EXPECT_EQ(layout.index_of("bridge-location", 0), 5u);
}

TEST_P(MetadataFormats, SegmentationRoundTrip) {
  Metadata meta = sample_metadata(GetParam());
  auto packets = meta.to_packets(test_key(), /*segment_size=*/64);
  ASSERT_GT(packets.size(), 1u);  // forced multi-segment
  std::vector<Bytes> contents;
  for (const auto& p : packets) {
    contents.emplace_back(p.content().begin(), p.content().end());
  }
  auto rebuilt = Metadata::from_segments(contents);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(*rebuilt, meta);
}

TEST_P(MetadataFormats, SegmentsCarryTotalCount) {
  Metadata meta = sample_metadata(GetParam());
  auto packets = meta.to_packets(test_key(), 64);
  for (const auto& p : packets) {
    EXPECT_EQ(Metadata::segment_count_of(
                  BytesView(p.content().data(), p.content().size())),
              packets.size());
  }
}

TEST_P(MetadataFormats, SegmentsAreSignedByProducer) {
  crypto::KeyChain kc;
  crypto::PrivateKey key = kc.generate_key("/p2");
  Metadata meta = sample_metadata(GetParam());
  auto packets = meta.to_packets(key, 1024);
  for (const auto& p : packets) {
    EXPECT_TRUE(p.verify(kc));
  }
}

TEST_P(MetadataFormats, SegmentNamesFollowConvention) {
  Metadata meta = sample_metadata(GetParam());
  auto packets = meta.to_packets(test_key(), 64);
  ndn::Name prefix = meta.name_prefix();
  // ".../metadata-file/<digest8>/<seg>"
  EXPECT_EQ(prefix.size(), 3u);
  EXPECT_EQ(prefix[1].to_string(), "metadata-file");
  EXPECT_EQ(prefix[2].to_string().size(), 8u);
  for (size_t i = 0; i < packets.size(); ++i) {
    EXPECT_TRUE(prefix.is_prefix_of(packets[i].name()));
    EXPECT_EQ(packets[i].name()[prefix.size()].to_number(), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, MetadataFormats,
                         ::testing::Values(MetadataFormat::kPacketDigest,
                                           MetadataFormat::kMerkleTree));

TEST(Metadata, DigestFormatVerifiesPacketImmediately) {
  // Build real content so digests match.
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create(
      ndn::Name("/c"), {{"f", bytes_of("0123456789abcdef")}}, 4,
      MetadataFormat::kPacketDigest, key);
  const Metadata& meta = col->metadata();
  Bytes payload = col->payload(1);
  auto ok = meta.verify_packet(0, 1, BytesView(payload.data(), payload.size()));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
  Bytes bad = bytes_of("XXXX");
  auto fail = meta.verify_packet(0, 1, BytesView(bad.data(), bad.size()));
  ASSERT_TRUE(fail.has_value());
  EXPECT_FALSE(*fail);
}

TEST(Metadata, MerkleFormatDefersPacketVerification) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create(
      ndn::Name("/c"), {{"f", bytes_of("0123456789abcdef")}}, 4,
      MetadataFormat::kMerkleTree, key);
  Bytes payload = col->payload(0);
  EXPECT_FALSE(col->metadata()
                   .verify_packet(0, 0, BytesView(payload.data(), payload.size()))
                   .has_value());
}

TEST(Metadata, VerifyFileBothFormats) {
  for (auto format :
       {MetadataFormat::kPacketDigest, MetadataFormat::kMerkleTree}) {
    crypto::KeyChain kc;
    auto key = kc.generate_key("/p");
    auto col = Collection::create(
        ndn::Name("/c"), {{"f", bytes_of("0123456789abcdef")}}, 4, format, key);
    std::vector<crypto::Digest> digests;
    for (size_t i = 0; i < 4; ++i) {
      Bytes p = col->payload(i);
      digests.push_back(crypto::Sha256::hash(BytesView(p.data(), p.size())));
    }
    EXPECT_TRUE(col->metadata().verify_file(0, digests));
    digests[2] = crypto::Sha256::hash("evil");
    EXPECT_FALSE(col->metadata().verify_file(0, digests));
  }
}

TEST(Metadata, DecodeRejectsGarbage) {
  Bytes junk = bytes_of("not metadata at all");
  EXPECT_FALSE(Metadata::decode(BytesView(junk.data(), junk.size())).has_value());
}

TEST(Metadata, DecodeRejectsDigestCountMismatch) {
  Metadata meta = sample_metadata(MetadataFormat::kPacketDigest);
  // Corrupt: re-encode with a file claiming 5 packets but 4 digests.
  auto files = meta.files();
  files[0].packet_digests.pop_back();
  Metadata bad(meta.collection(), MetadataFormat::kPacketDigest, files);
  Bytes wire = bad.encode();
  EXPECT_FALSE(Metadata::decode(BytesView(wire.data(), wire.size())).has_value());
}

TEST(Metadata, DigestIsStable) {
  Metadata a = sample_metadata(MetadataFormat::kMerkleTree);
  Metadata b = sample_metadata(MetadataFormat::kMerkleTree);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest8(), b.digest8());
  EXPECT_EQ(a.digest8().size(), 8u);
  // Different format -> different digest (name component changes).
  EXPECT_NE(a.digest(), sample_metadata(MetadataFormat::kPacketDigest).digest());
}

TEST(Metadata, FromSegmentsRejectsTruncatedHeader) {
  std::vector<Bytes> segments = {bytes_of("ab")};
  EXPECT_FALSE(Metadata::from_segments(segments).has_value());
}

}  // namespace
}  // namespace dapes::core
