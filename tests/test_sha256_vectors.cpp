// FIPS 180-4 known-answer and engine-equivalence suite for the SHA-256
// dispatch layer (DESIGN.md "Crypto engine & verify cache").
//
// Every engine this CPU supports — the retained scalar reference plus any
// compiled SIMD kernels (SSSE3 x4, AVX2 x8, SHA-NI) — is swept through:
//   * the NIST FIPS 180-4 known-answer vectors (empty, "abc", the 448-
//     and 896-bit two-block messages, the million-'a' long message);
//   * a CAVP-style monte-carlo chain (two 1000-iteration checkpoints,
//     expected values cross-checked against an independent
//     implementation);
//   * a randomized scalar-vs-engine equivalence sweep: 10k buffers whose
//     lengths concentrate on the adversarial padding boundaries (0, 1,
//     55, 56, 63, 64, 65, odd) plus multi-MiB bulk messages;
//   * multi-buffer lane-count sweeps of sha256_many (every count around
//     the 4/8-lane widths, mixed block counts, duplicate buffers);
//   * incremental-update splits (the streaming Sha256 context must agree
//     with the one-shot path under every engine).
//
// The scalar reference (crypto::ref::sha256) is the baseline everywhere:
// it never goes through the dispatch table, so a broken kernel cannot
// vouch for itself.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace dapes::crypto {
namespace {

using common::Bytes;
using common::BytesView;

BytesView view_of(const Bytes& b) { return BytesView(b.data(), b.size()); }

/// Restores the probe's engine choice after each test so the suite
/// cannot leak a forced engine into other tests in the binary.
struct EngineSweepTest : ::testing::Test {
  void TearDown() override { ASSERT_TRUE(set_engine("auto")); }

  /// Run @p body once per supported engine (selected by name, asserted).
  template <typename Fn>
  void for_each_engine(Fn&& body) {
    for (const Sha256Engine* e : all_engines()) {
      ASSERT_TRUE(set_engine(e->name)) << e->name;
      ASSERT_STREQ(engine().name, e->name);
      SCOPED_TRACE(e->name);
      body(*e);
    }
  }
};

// --- FIPS 180-4 / CAVP known answers -------------------------------------

struct Kat {
  const char* message;
  const char* digest_hex;
};

// The standard FIPS 180-4 appendix vectors: one-block, two-block (448-bit
// and 896-bit messages — both pad into a second block).
constexpr Kat kKats[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
     "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
     "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
};

TEST_F(EngineSweepTest, FipsKnownAnswersEveryEngine) {
  for_each_engine([](const Sha256Engine&) {
    for (const Kat& kat : kKats) {
      EXPECT_EQ(Sha256::hash(std::string_view(kat.message)).to_hex(),
                kat.digest_hex)
          << "message: \"" << kat.message << "\"";
    }
  });
}

TEST_F(EngineSweepTest, MillionAMessageEveryEngine) {
  const Bytes message(1000000, static_cast<uint8_t>('a'));
  for_each_engine([&](const Sha256Engine&) {
    EXPECT_EQ(
        Sha256::hash(view_of(message)).to_hex(),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
  });
}

TEST_F(EngineSweepTest, KnownAnswersThroughMultiBuffer) {
  // The same vectors through sha256_many, padded with duplicates so the
  // batch exceeds every kernel's lane width and the multi-buffer path is
  // actually taken.
  std::vector<BytesView> inputs;
  std::vector<std::string> expected;
  for (int rep = 0; rep < 3; ++rep) {
    for (const Kat& kat : kKats) {
      inputs.push_back(BytesView(
          reinterpret_cast<const uint8_t*>(kat.message),
          std::strlen(kat.message)));
      expected.push_back(kat.digest_hex);
    }
  }
  for_each_engine([&](const Sha256Engine&) {
    std::vector<Digest> out(inputs.size());
    sha256_many(inputs.data(), out.data(), inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(out[i].to_hex(), expected[i]) << "input " << i;
    }
  });
}

// CAVP-style monte-carlo: seed = 32 zero bytes; each checkpoint is 1000
// iterations of MD[i] = SHA-256(MD[i-3] || MD[i-2] || MD[i-1]) with the
// window re-seeded from the previous checkpoint. Expected values were
// produced by an independent SHA-256 implementation.
TEST_F(EngineSweepTest, MonteCarloChainEveryEngine) {
  const char* checkpoints[] = {
      "ae8a297f0267f74440b9f6e30054604c45a9709c6d9d8702410b5564a6e14fb7",
      "1a4028c897a3f043f77815442f0f3f5c12e7647a84ee32c179e7c4bfffa6916c",
  };
  for_each_engine([&](const Sha256Engine&) {
    Digest seed{};  // 32 zero bytes
    for (const char* expected : checkpoints) {
      Digest md0 = seed, md1 = seed, md2 = seed;
      for (int i = 0; i < 1000; ++i) {
        Sha256 ctx;
        ctx.update(md0.view());
        ctx.update(md1.view());
        ctx.update(md2.view());
        Digest next = ctx.final_digest();
        md0 = md1;
        md1 = md2;
        md2 = next;
      }
      seed = md2;
      EXPECT_EQ(seed.to_hex(), expected);
    }
  });
}

// --- randomized scalar-vs-engine equivalence -----------------------------

TEST_F(EngineSweepTest, RandomizedEquivalenceTenThousandBuffers) {
  // Lengths concentrate on the FIPS padding boundaries: 55 is the largest
  // single-block message, 56 forces the two-block pad, 64 is an exact
  // block, 65 spills one byte. Odd lengths and a pseudo-random tail
  // catch stride bugs; the multi-MiB cases exercise long body runs.
  const size_t kBoundary[] = {0, 1, 3, 31, 55, 56, 57, 63, 64, 65, 127, 128};
  common::Rng rng(0x5eedcafe);
  std::vector<Bytes> buffers;
  buffers.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) {
    size_t len;
    if (i < 9000) {
      len = kBoundary[i % std::size(kBoundary)] + 64 * (i % 7);
    } else if (i < 9990) {
      len = static_cast<size_t>(rng.uniform_int(0, 4097)) | 1;  // odd
    } else {
      len = (2u << 20) + i;  // ten multi-MiB messages
    }
    Bytes b(len);
    for (auto& byte : b) {
      byte = static_cast<uint8_t>(rng.uniform_int(0, 255));
    }
    buffers.push_back(std::move(b));
  }

  std::vector<Digest> reference(buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    reference[i] = ref::sha256(view_of(buffers[i]));
  }

  std::vector<BytesView> views;
  views.reserve(buffers.size());
  for (const Bytes& b : buffers) views.push_back(view_of(b));

  for_each_engine([&](const Sha256Engine&) {
    // Batched through the engine's multi-buffer kernel...
    std::vector<Digest> batched(views.size());
    sha256_many(views.data(), batched.data(), views.size());
    size_t batch_mismatches = 0;
    for (size_t i = 0; i < views.size(); ++i) {
      if (batched[i] != reference[i]) ++batch_mismatches;
    }
    EXPECT_EQ(batch_mismatches, 0u);
    // ...and single-shot through its block compressor (spot-checked: the
    // full sweep would be quadratic in test time for no extra coverage).
    for (size_t i = 0; i < views.size(); i += 97) {
      ASSERT_EQ(Sha256::hash(views[i]), reference[i]) << "buffer " << i;
    }
  });
}

TEST_F(EngineSweepTest, LaneCountSweep) {
  // Every batch size around the 4- and 8-lane kernel widths, with block
  // counts mixed so grouping, lockstep chunking and the singles fallback
  // all engage, plus duplicated buffers (lane-padding replays a slot).
  common::Rng fill(4242);
  std::vector<Bytes> pool;
  for (size_t len : {0u, 1u, 55u, 64u, 65u, 200u, 1000u, 4096u}) {
    Bytes b(len);
    for (auto& byte : b) {
      byte = static_cast<uint8_t>(fill.uniform_int(0, 255));
    }
    pool.push_back(std::move(b));
  }
  for (size_t count = 1; count <= 33; ++count) {
    std::vector<BytesView> views;
    std::vector<Digest> expected;
    for (size_t i = 0; i < count; ++i) {
      const Bytes& b = pool[(i * 5 + count) % pool.size()];
      views.push_back(view_of(b));
      expected.push_back(ref::sha256(view_of(b)));
    }
    for_each_engine([&](const Sha256Engine&) {
      std::vector<Digest> out(count);
      sha256_many(views.data(), out.data(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(out[i], expected[i]) << "count " << count << " slot " << i;
      }
    });
  }
}

TEST_F(EngineSweepTest, IncrementalUpdateSplitsEveryEngine) {
  // The streaming context folds bulk runs through the active engine's
  // compressor; every split of the same message must agree with the
  // scalar one-shot digest.
  common::Rng fill(777);
  Bytes message(1024 + 37);
  for (auto& byte : message) {
    byte = static_cast<uint8_t>(fill.uniform_int(0, 255));
  }
  const Digest expected = ref::sha256(view_of(message));
  for_each_engine([&](const Sha256Engine&) {
    for (size_t split : {0u, 1u, 55u, 63u, 64u, 65u, 512u, 1061u}) {
      Sha256 ctx;
      ctx.update(BytesView(message.data(), split));
      ctx.update(BytesView(message.data() + split, message.size() - split));
      EXPECT_EQ(ctx.final_digest(), expected) << "split " << split;
    }
  });
}

// --- dispatch-layer behavior ---------------------------------------------

TEST_F(EngineSweepTest, ScalarEngineAlwaysPresent) {
  bool scalar = false;
  for (const Sha256Engine* e : all_engines()) {
    if (std::string_view(e->name) == "scalar") scalar = true;
    // Every listed engine must have a single-stream compressor; the
    // multi-buffer kernel is optional but implies a lane width.
    EXPECT_NE(e->compress, nullptr) << e->name;
    EXPECT_EQ(e->compress_multi != nullptr, e->lanes > 0) << e->name;
  }
  EXPECT_TRUE(scalar);
}

TEST_F(EngineSweepTest, UnknownEngineRejectedWithoutSwitching) {
  ASSERT_TRUE(set_engine("scalar"));
  EXPECT_FALSE(set_engine("no-such-engine"));
  EXPECT_STREQ(engine().name, "scalar");  // unchanged on failure
  EXPECT_TRUE(set_engine(""));            // "" selects the probe's choice
}

}  // namespace
}  // namespace dapes::crypto
