// Unit tests for Collection: naming, segmentation, payload modes,
// signatures.
#include <gtest/gtest.h>

#include "dapes/collection.hpp"

namespace dapes::core {
namespace {

using common::Bytes;
using common::BytesView;
using common::bytes_of;

TEST(Collection, ExplicitContentRoundTrips) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  Bytes content = bytes_of("The quick brown fox jumps over the lazy dog!!");
  auto col = Collection::create(ndn::Name("/c"), {{"fox", content}}, 10,
                                MetadataFormat::kPacketDigest, key);
  ASSERT_EQ(col->total_packets(), 5u);  // 46 bytes / 10
  Bytes reassembled;
  for (size_t i = 0; i < col->total_packets(); ++i) {
    Bytes p = col->payload(i);
    reassembled.insert(reassembled.end(), p.begin(), p.end());
  }
  EXPECT_EQ(reassembled, content);
}

TEST(Collection, PacketNamesFollowNamespace) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create(
      ndn::Name("/damaged-bridge-1533783192"),
      {{"bridge-picture", bytes_of("0123456789")}}, 5,
      MetadataFormat::kPacketDigest, key);
  EXPECT_EQ(col->packet(0).name().to_uri(),
            "/damaged-bridge-1533783192/bridge-picture/0");
  EXPECT_EQ(col->packet(1).name().to_uri(),
            "/damaged-bridge-1533783192/bridge-picture/1");
}

TEST(Collection, PacketsSignedByProducer) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create(ndn::Name("/c"), {{"f", bytes_of("abc")}}, 4,
                                MetadataFormat::kPacketDigest, key);
  ndn::Data packet = col->packet(0);
  EXPECT_TRUE(packet.verify(kc));
  EXPECT_EQ(col->producer(), key.id());
}

TEST(Collection, DigestsMatchPayloads) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create(ndn::Name("/c"), {{"f", bytes_of("0123456789")}},
                                4, MetadataFormat::kPacketDigest, key);
  const auto& digests = col->metadata().files()[0].packet_digests;
  ASSERT_EQ(digests.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    Bytes p = col->payload(i);
    EXPECT_EQ(crypto::Sha256::hash(BytesView(p.data(), p.size())), digests[i]);
  }
}

TEST(Collection, SyntheticPayloadsDeterministic) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto a = Collection::create_synthetic(ndn::Name("/c"), {{"f", 4096}}, 1024,
                                        MetadataFormat::kPacketDigest, key);
  auto b = Collection::create_synthetic(ndn::Name("/c"), {{"f", 4096}}, 1024,
                                        MetadataFormat::kPacketDigest, key);
  EXPECT_EQ(a->payload(2), b->payload(2));
  EXPECT_EQ(a->metadata().digest(), b->metadata().digest());
}

TEST(Collection, SyntheticPayloadsDifferPerPacket) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create_synthetic(ndn::Name("/c"), {{"f", 4096}}, 1024,
                                          MetadataFormat::kPacketDigest, key);
  EXPECT_NE(col->payload(0), col->payload(1));
}

TEST(Collection, SyntheticSizesAndTailPacket) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  // 2500 bytes at 1024 -> packets of 1024, 1024, 452.
  auto col = Collection::create_synthetic(ndn::Name("/c"), {{"f", 2500}}, 1024,
                                          MetadataFormat::kPacketDigest, key);
  ASSERT_EQ(col->total_packets(), 3u);
  EXPECT_EQ(col->payload(0).size(), 1024u);
  EXPECT_EQ(col->payload(2).size(), 452u);
}

TEST(Collection, MultiFileLayoutOrder) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create_synthetic(
      ndn::Name("/c"), {{"first", 2048}, {"second", 1024}}, 1024,
      MetadataFormat::kPacketDigest, key);
  EXPECT_EQ(col->total_packets(), 3u);
  EXPECT_EQ(col->packet(2).name().to_uri(), "/c/second/0");
  EXPECT_EQ(col->packet("second", 0).name(), col->packet(2).name());
  EXPECT_THROW(col->packet("second", 5), std::out_of_range);
}

TEST(Collection, EmptyFileStillOnePacket) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create(ndn::Name("/c"), {{"empty", {}}}, 1024,
                                MetadataFormat::kPacketDigest, key);
  EXPECT_EQ(col->total_packets(), 1u);
  EXPECT_TRUE(col->payload(0).empty());
}

TEST(Collection, ZeroPacketSizeRejected) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  EXPECT_THROW(Collection::create(ndn::Name("/c"), {{"f", bytes_of("x")}}, 0,
                                  MetadataFormat::kPacketDigest, key),
               std::invalid_argument);
}

TEST(Collection, MetadataPacketsServable) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create_synthetic(ndn::Name("/c"), {{"f", 65536}}, 256,
                                          MetadataFormat::kPacketDigest, key);
  // 256 packets x 33+ bytes of digest entries: several segments.
  EXPECT_GT(col->metadata_packets().size(), 1u);
  for (const auto& seg : col->metadata_packets()) {
    EXPECT_TRUE(seg.verify(kc));
  }
}

TEST(Collection, MerkleFormatHasRootsNotDigests) {
  crypto::KeyChain kc;
  auto key = kc.generate_key("/p");
  auto col = Collection::create_synthetic(ndn::Name("/c"), {{"f", 4096}}, 1024,
                                          MetadataFormat::kMerkleTree, key);
  const auto& fm = col->metadata().files()[0];
  EXPECT_TRUE(fm.merkle_root.has_value());
  EXPECT_TRUE(fm.packet_digests.empty());
  // Metadata fits one segment.
  EXPECT_EQ(col->metadata_packets().size(), 1u);
}

}  // namespace
}  // namespace dapes::core
