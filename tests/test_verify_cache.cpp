// The verify-result cache layer, end to end (DESIGN.md "Crypto engine &
// verify cache"):
//   * hash-once-per-frame regression: `Data::verify` must not recompute
//     the content digest per verify call (latent since the zero-copy PR,
//     where per-receiver re-hashing became the top profile entry);
//   * hit-once-per-broadcast: through a real medium broadcast, the
//     delivery prewarm hashes and MAC-checks one frame once, and every
//     receiver's verify is served from the cache;
//   * mutation invalidation (the test_zero_copy idiom): mutating a packet
//     drops its cached wire, and the re-encode lands in a fresh buffer,
//     so a stale verdict is unreachable;
//   * eviction and capacity accounting of the cache itself;
//   * trial equivalence: the cache is exact, so for 12 randomized seeds
//     (channel x mobility mixed, the test_parallel_trial scenario) every
//     deterministic TrialResult field is bit-identical with the cache on
//     or off — and stays so under the phase-parallel engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/keychain.hpp"
#include "crypto/verify_cache.hpp"
#include "harness/driver.hpp"
#include "ndn/face.hpp"
#include "ndn/packet.hpp"
#include "ndn/verify_prewarm.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes {
namespace {

using common::BufferSlice;
using common::Bytes;
using common::bytes_of;

crypto::Digest digest_of(const char* text) {
  return crypto::Sha256::hash(std::string_view(text));
}

// --- hash-once-per-frame regression --------------------------------------

struct HashOncePerFrame : ::testing::Test {
  void SetUp() override { crypto::verify_counters().reset(); }
  void TearDown() override { crypto::verify_counters().reset(); }
};

TEST_F(HashOncePerFrame, RepeatedVerifyHashesContentOnce) {
  crypto::KeyChain keychain;
  crypto::PrivateKey key = keychain.generate_key("/producer");
  ndn::Data data(ndn::Name("/hash/once/0"));
  data.set_content(Bytes(4096, 0x5a));

  crypto::verify_counters().reset();
  data.sign(key);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(data.verify(keychain));
  }
  // sign() hashed the content once and warmed the per-packet memo; the
  // five verifies must all reuse it. The pre-fix code re-hashed the 4 KiB
  // content inside KeyChain::verify on every call (6 computes here).
  EXPECT_EQ(crypto::verify_counters().content_digests_computed.load(), 1u);
}

TEST_F(HashOncePerFrame, DecodedPacketHashesContentOnce) {
  crypto::KeyChain keychain;
  crypto::PrivateKey key = keychain.generate_key("/producer");
  ndn::Data origin(ndn::Name("/hash/once/1"));
  origin.set_content(Bytes(1024, 0x33));
  origin.sign(key);

  auto decoded = ndn::Data::decode(origin.wire());
  ASSERT_TRUE(decoded.has_value());
  crypto::verify_counters().reset();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(decoded->verify(keychain));
  }
  EXPECT_EQ(crypto::verify_counters().content_digests_computed.load(), 1u);
}

// --- cache unit behavior --------------------------------------------------

TEST(VerifyCacheUnit, StoreLookupRoundTrip) {
  crypto::VerifyCache cache;
  BufferSlice wire(bytes_of("some frame bytes"));
  const crypto::Digest digest = digest_of("digest");
  const crypto::Digest secret = digest_of("secret");

  EXPECT_FALSE(cache.lookup_digest(wire.data(), wire.size()).has_value());
  cache.store_digest(wire, digest);
  auto hit = cache.lookup_digest(wire.data(), wire.size());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, digest);

  EXPECT_FALSE(cache.lookup_mac(wire.data(), wire.size(), secret).has_value());
  cache.store_mac(wire, secret, true);
  auto verdict = cache.lookup_mac(wire.data(), wire.size(), secret);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
  // A different secret is a different check: no cross-key verdicts.
  EXPECT_FALSE(
      cache.lookup_mac(wire.data(), wire.size(), digest_of("other")).has_value());
}

TEST(VerifyCacheUnit, UnanchoredSlicesAreNotCached) {
  crypto::VerifyCache cache;
  Bytes backing = bytes_of("borrowed bytes");
  // A borrowed view has no ref-counted buffer to pin, so the store must
  // refuse it: a pointer key into freed memory would be an ABA bug.
  BufferSlice borrowed = BufferSlice::unowned(
      common::BytesView(backing.data(), backing.size()));
  cache.store_digest(borrowed, digest_of("x"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerifyCacheUnit, EvictionAndCapacityAccounting) {
  crypto::VerifyCache cache(8);
  EXPECT_EQ(cache.capacity(), 8u);
  std::vector<BufferSlice> slices;
  for (int i = 0; i < 12; ++i) {
    slices.push_back(BufferSlice(bytes_of("entry " + std::to_string(i))));
    cache.store_digest(slices.back(), digest_of("d"));
  }
  // Capacity is per kind; the four oldest digests were evicted.
  EXPECT_EQ(cache.size(), 8u);
  crypto::VerifyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 12u);
  EXPECT_EQ(stats.evictions, 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(
        cache.lookup_digest(slices[i].data(), slices[i].size()).has_value())
        << i;
  }
  for (int i = 4; i < 12; ++i) {
    EXPECT_TRUE(
        cache.lookup_digest(slices[i].data(), slices[i].size()).has_value())
        << i;
  }
  // MAC entries are accounted separately and don't displace digests.
  cache.store_mac(slices[11], digest_of("secret"), true);
  EXPECT_EQ(cache.size(), 9u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerifyCacheUnit, ReStoreRefreshesEvictionOrder) {
  crypto::VerifyCache cache(8);
  std::vector<BufferSlice> slices;
  for (int i = 0; i < 8; ++i) {
    slices.push_back(BufferSlice(bytes_of("refresh " + std::to_string(i))));
    cache.store_digest(slices[i], digest_of("d"));
  }
  // Refresh the oldest, then overflow by one: the second-oldest goes.
  cache.store_digest(slices[0], digest_of("d"));
  BufferSlice extra(bytes_of("one more"));
  cache.store_digest(extra, digest_of("d"));
  EXPECT_TRUE(
      cache.lookup_digest(slices[0].data(), slices[0].size()).has_value());
  EXPECT_FALSE(
      cache.lookup_digest(slices[1].data(), slices[1].size()).has_value());
}

// --- broadcast scenario: hit once per broadcast ---------------------------

struct BroadcastVerify : ::testing::Test {
  sim::Scheduler sched;
  sim::StationaryMobility pos_a{{0, 0}};
  sim::StationaryMobility pos_b{{10, 0}};
  sim::StationaryMobility pos_c{{20, 0}};
  common::Rng rng{99};
  crypto::KeyChain keychain;
  crypto::PrivateKey key;
  std::vector<std::shared_ptr<sim::Radio>> radios;

  void SetUp() override {
    key = keychain.generate_key("/producer");
    crypto::verify_counters().reset();
  }
  void TearDown() override { crypto::verify_counters().reset(); }

  sim::Medium::Params params() {
    sim::Medium::Params p;
    p.range_m = 100;
    p.loss_rate = 0.0;
    return p;
  }
};

TEST_F(BroadcastVerify, BroadcastVerifiedOncePerFrameNotPerReceiver) {
  sim::Medium medium(sched, params(), rng.fork());
  crypto::VerifyCache cache;
  ndn::DataVerifyPrewarm prewarm(cache, keychain);
  medium.set_prewarm(&prewarm);
  crypto::VerifyCacheScope scope(&cache);

  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  std::vector<std::shared_ptr<ndn::WifiFace>> receivers;
  std::vector<bool> verified;
  for (auto* pos : {&pos_b, &pos_c}) {
    auto idx = receivers.size();
    sim::NodeId node = medium.add_node(
        pos, [this, idx, &receivers](const sim::FramePtr& frame, sim::NodeId) {
          receivers[idx]->on_frame(frame);
        });
    auto radio = std::make_shared<sim::Radio>(sched, medium, node, rng.fork());
    auto face = std::make_shared<ndn::WifiFace>(sched, *radio, node,
                                                rng.fork(), common::Duration{0});
    face->set_receive_handlers(nullptr, [this, &verified](const ndn::Data& d) {
      verified.push_back(d.verify(keychain));
    });
    radios.push_back(std::move(radio));
    receivers.push_back(std::move(face));
  }

  ndn::Data data(ndn::Name("/vc/broadcast/0"));
  data.set_content(Bytes(2048, 0x7e));
  data.set_freshness(common::Duration::seconds(100.0));
  data.sign(key);

  sim::Radio radio_a(sched, medium, a, rng.fork());
  ndn::WifiFace sender(sched, radio_a, a, rng.fork(), common::Duration{0});
  crypto::verify_counters().reset();
  sender.send_data(data);
  sched.run();

  // Both receivers verified successfully...
  ASSERT_EQ(verified.size(), 2u);
  EXPECT_TRUE(verified[0]);
  EXPECT_TRUE(verified[1]);
  // ...but the frame's content was hashed exactly once (by the delivery
  // prewarm), and both verifies were served as MAC-verdict cache hits.
  EXPECT_EQ(crypto::verify_counters().content_digests_computed.load(), 1u);
  crypto::VerifyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.mac_hits, 2u);
}

TEST_F(BroadcastVerify, FanoutHashesOncePerFrame) {
  // The dense regime the cache exists for: one sender, a crowd of
  // receivers, every receiver verifying every frame. Uncached this costs
  // frames x receivers digests; the prewarm pins it to exactly one
  // digest per frame, with every per-receiver verify a MAC-verdict hit.
  constexpr size_t kReceivers = 20;
  constexpr int kFrames = 10;
  sim::Medium medium(sched, params(), rng.fork());
  crypto::VerifyCache cache;
  ndn::DataVerifyPrewarm prewarm(cache, keychain);
  medium.set_prewarm(&prewarm);
  crypto::VerifyCacheScope scope(&cache);

  sim::NodeId a = medium.add_node(&pos_a, nullptr);
  std::vector<std::unique_ptr<sim::StationaryMobility>> spots;
  std::vector<std::shared_ptr<ndn::WifiFace>> receivers;
  size_t verified = 0;
  for (size_t r = 0; r < kReceivers; ++r) {
    spots.push_back(std::make_unique<sim::StationaryMobility>(
        sim::Vec2{5.0 + static_cast<double>(r), 3.0}));
    auto idx = receivers.size();
    sim::NodeId node = medium.add_node(
        spots.back().get(),
        [idx, &receivers](const sim::FramePtr& frame, sim::NodeId) {
          receivers[idx]->on_frame(frame);
        });
    auto radio = std::make_shared<sim::Radio>(sched, medium, node, rng.fork());
    auto face = std::make_shared<ndn::WifiFace>(sched, *radio, node,
                                                rng.fork(), common::Duration{0});
    face->set_receive_handlers(nullptr,
                               [this, &verified](const ndn::Data& d) {
                                 ASSERT_TRUE(d.verify(keychain));
                                 ++verified;
                               });
    radios.push_back(std::move(radio));
    receivers.push_back(std::move(face));
  }

  sim::Radio radio_a(sched, medium, a, rng.fork());
  ndn::WifiFace sender(sched, radio_a, a, rng.fork(), common::Duration{0});
  std::vector<ndn::Data> frames;
  for (int f = 0; f < kFrames; ++f) {
    ndn::Data data(ndn::Name("/vc/fanout/" + std::to_string(f)));
    data.set_content(Bytes(2048, static_cast<uint8_t>(f)));
    data.set_freshness(common::Duration::seconds(100.0));
    data.sign(key);
    frames.push_back(std::move(data));
  }
  crypto::verify_counters().reset();
  for (const ndn::Data& data : frames) {
    sender.send_data(data);
    sched.run();
  }

  ASSERT_EQ(verified, kReceivers * kFrames);
  // The prewarm hashes each delivered frame's content exactly once and
  // serves all 200 receiver verifies from the MAC-verdict cache — the
  // uncached path would have computed kReceivers x kFrames digests.
  EXPECT_EQ(crypto::verify_counters().content_digests_computed.load(),
            static_cast<uint64_t>(kFrames));
  EXPECT_EQ(cache.stats().mac_hits,
            static_cast<uint64_t>(kReceivers * kFrames));
}

TEST_F(BroadcastVerify, MutationInvalidatesCachedVerdict) {
  crypto::VerifyCache cache;
  ndn::DataVerifyPrewarm prewarm(cache, keychain);
  crypto::VerifyCacheScope scope(&cache);

  // Prewarm a signed frame the way the medium would.
  ndn::Data origin(ndn::Name("/vc/mut/0"));
  origin.set_content(bytes_of("original content"));
  origin.sign(key);
  auto frame = std::make_shared<sim::Frame>();
  frame->sender = 0;
  frame->payload = origin.wire();
  frame->kind = "ndn-data";
  sim::FramePtr fp = frame;
  prewarm.stage(&fp, 1);
  prewarm.commit(*fp);

  auto decoded = ndn::Data::decode(frame->payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->verify(keychain));
  EXPECT_GT(cache.stats().mac_hits, 0u);

  // Mutating the packet invalidates its cached wire; the next verify
  // must not see the stale verdict. The old signature no longer matches
  // the new content, and the re-encode lands in a fresh allocation, so
  // the pointer key cannot collide with the cached entry.
  ndn::Data mutated = *decoded;
  mutated.set_content(bytes_of("tampered content"));
  EXPECT_FALSE(mutated.has_wire());
  EXPECT_FALSE(mutated.verify(keychain));
  EXPECT_NE(mutated.wire().data(), frame->payload.data());

  // Re-signing restores a verifiable binding (computed, not cached).
  mutated.sign(key);
  EXPECT_TRUE(mutated.verify(keychain));
}

TEST_F(BroadcastVerify, UnknownSignerIsNotCachedAsValid) {
  crypto::VerifyCache cache;
  ndn::DataVerifyPrewarm prewarm(cache, keychain);
  crypto::VerifyCacheScope scope(&cache);

  crypto::KeyChain stranger_chain;
  crypto::PrivateKey stranger = stranger_chain.generate_key("/stranger");
  ndn::Data data(ndn::Name("/vc/stranger/0"));
  data.set_content(bytes_of("who signed this"));
  data.sign(stranger);

  auto frame = std::make_shared<sim::Frame>();
  frame->sender = 0;
  frame->payload = data.wire();
  frame->kind = "ndn-data";
  sim::FramePtr fp = frame;
  prewarm.stage(&fp, 1);
  prewarm.commit(*fp);

  auto decoded = ndn::Data::decode(frame->payload);
  ASSERT_TRUE(decoded.has_value());
  // The trust keychain doesn't know the signer: verify is false, with or
  // without the cache (the prewarm caches the digest but no verdict).
  EXPECT_FALSE(decoded->verify(keychain));
}

// --- trial equivalence: cached vs uncached -------------------------------

namespace equivalence {

using harness::ProtocolNames;
using harness::ScenarioParams;
using harness::TrialResult;

// The test_parallel_trial scenario: small enough for suite speed, varied
// enough that seeds cover {unit-disk, log-distance} x {waypoint, group}.
ScenarioParams small_field(uint64_t seed) {
  ScenarioParams p;
  p.files = 1;
  p.file_size_bytes = 8 * 1024;
  p.mobile_downloaders = 8;
  p.stationary_downloaders = 2;
  p.pure_forwarders = 3;
  p.dapes_intermediates = 3;
  p.wifi_range_m = 80.0;
  p.data_rate_bps = 11e6;
  p.sim_limit_s = 300.0;
  p.seed = seed;
  p.mobility = (seed % 2 == 0) ? harness::MobilityKind::kRandomWaypoint
                               : harness::MobilityKind::kGroup;
  if ((seed / 2) % 2 == 1) {
    p.channel.model = "log-distance";
    p.channel.shadowing_sigma_db = 4.0;
  }
  return p;
}

void expect_equal(const TrialResult& a, const TrialResult& b) {
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
  EXPECT_DOUBLE_EQ(a.completion_fraction, b.completion_fraction);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.tx_by_kind, b.tx_by_kind);
  EXPECT_EQ(a.collided_frames, b.collided_frames);
  EXPECT_EQ(a.peak_state_bytes, b.peak_state_bytes);
  EXPECT_EQ(a.total_state_bytes, b.total_state_bytes);
  EXPECT_EQ(a.peak_knowledge_bytes, b.peak_knowledge_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

class CachedTrialEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CachedTrialEquivalence, CacheDoesNotChangeResults) {
  ScenarioParams cached = small_field(GetParam());
  cached.verify_cache = true;
  ScenarioParams uncached = small_field(GetParam());
  uncached.verify_cache = false;

  TrialResult with_cache = run_trial(ProtocolNames::kScaleField, cached);
  ASSERT_GT(with_cache.transmissions, 0u);
  TrialResult without = run_trial(ProtocolNames::kScaleField, uncached);
  expect_equal(with_cache, without);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedTrialEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CachedTrial, ComposesWithPhaseParallelEngine) {
  // The cache + prewarm must stay bit-identical under the fan-out engine
  // too (worker lanes read the cache the prewarm committed).
  ScenarioParams p = small_field(5);
  p.verify_cache = true;
  TrialResult serial = run_trial(ProtocolNames::kScaleField, p);
  for (int lanes : {1, 4}) {
    SCOPED_TRACE(lanes);
    ScenarioParams q = p;
    q.trial_threads = lanes;
    expect_equal(serial, run_trial(ProtocolNames::kScaleField, q));
  }
}

TEST(CachedTrial, CacheActuallyServesTheTrial) {
  // Guard against the whole layer silently wiring to a no-op: through a
  // full protocol trial, the prewarm must commit entries and the receive
  // path must serve verifies from them — both the per-packet integrity
  // digests and the metadata MAC checks. (The compute-count *savings*
  // depend on verifiers-per-broadcast, a density property this small
  // trial doesn't have; BroadcastVerify.FanoutHashesOncePerFrame pins
  // the exact once-per-frame arithmetic, and the bench_crypto workload
  // measures the dense-regime speedup.)
  crypto::verify_counters().reset();
  ScenarioParams p = small_field(3);
  p.wifi_range_m = 150.0;
  p.loss_rate = 0.0;
  p.verify_cache = true;
  run_trial(ProtocolNames::kScaleField, p);
  const uint64_t mac_hits = crypto::verify_counters().mac_hits.load();
  const uint64_t digest_hits = crypto::verify_counters().digest_hits.load();
  const uint64_t insertions = crypto::verify_counters().insertions.load();

  crypto::verify_counters().reset();
  p.verify_cache = false;
  run_trial(ProtocolNames::kScaleField, p);
  // With the knob off nothing touches a cache at all.
  EXPECT_EQ(crypto::verify_counters().mac_hits.load(), 0u);
  EXPECT_EQ(crypto::verify_counters().insertions.load(), 0u);
  crypto::verify_counters().reset();

  EXPECT_GT(insertions, 0u);
  EXPECT_GT(mac_hits, 0u);
  EXPECT_GT(digest_hits, 0u);
}

}  // namespace equivalence

}  // namespace
}  // namespace dapes
