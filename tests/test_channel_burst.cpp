// Statistical-property and determinism suite for the channel realism
// stack (DESIGN.md "Channel realism round two"): Gilbert-Elliott bursty
// erasures, Rayleigh/Rician fast fading, spatially correlated shadowing
// and SIR-adaptive bitrate selection.
//
// Three layers of guarantees:
//  1. Statistics match closed form. The GE process's empirical
//     stationary occupancy, per-slot transition frequencies and mean
//     burst length over thousands of keyed draws agree with the
//     analytic two-state Markov values it was constructed from; the
//     fading gain's power moments match the Rayleigh/Rician formulas
//     (and K -> infinity degenerates to no fading); the shadow field's
//     empirical covariance decays with distance along the Gaussian
//     closed form.
//  2. Pure-function determinism. Link state is a pure function of
//     (seed, pair, time) — repeatable, symmetric in the pair — and the
//     whole stack stays bit-identical across grid-vs-brute, --jobs
//     1-vs-8 and --trial-threads 1/2/4 for every model combination.
//  3. The harness closes the link_seed foot-gun: Topology always
//     installs a per-trial link_seed (distinct across trial seeds) when
//     the caller leaves the field at 0.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/driver.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "harness/topology.hpp"
#include "harness/trial_runner.hpp"
#include "medium_test_world.hpp"
#include "sim/channel.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::sim {
namespace {

using testworld::World;
using testworld::build_world;
using testworld::world_hash;

// A short-burst chain whose mean burst (~3.8 slots) fits comfortably
// inside the 32-slot anchor blocks, so complete bursts are observable.
ChannelParams burst_params() {
  ChannelParams cp;
  cp.model = "log-distance";
  cp.ge_bad_fraction = 0.3;
  cp.ge_mean_burst_ms = 30.0;
  cp.ge_slot_ms = 10.0;
  cp.link_seed = 42;
  return cp;
}

// ---------------------------------------------------------------------
// 1. Gilbert-Elliott statistics vs closed form.
// ---------------------------------------------------------------------

TEST(GilbertElliott, ClosedFormParametersAreConsistent) {
  GilbertElliott ge(burst_params());
  ASSERT_TRUE(ge.enabled());
  EXPECT_DOUBLE_EQ(ge.stationary_bad(), 0.3);
  EXPECT_DOUBLE_EQ(ge.slot_s(), 0.01);
  // The one-slot transition matrix must preserve the stationary
  // distribution: pi = pi * p_bb + (1 - pi) * p_gb.
  const double pi = ge.stationary_bad();
  EXPECT_NEAR(pi, pi * ge.p_stay_bad() + (1.0 - pi) * ge.p_enter_bad(),
              1e-12);
  // And match the analytic CTMC solution directly.
  const double mu = 1.0 / 0.03;
  const double lambda = mu * pi / (1.0 - pi);
  const double decay = std::exp(-(lambda + mu) * ge.slot_s());
  EXPECT_NEAR(ge.p_enter_bad(), pi * (1.0 - decay), 1e-12);
  EXPECT_NEAR(ge.p_stay_bad(), pi + (1.0 - pi) * decay, 1e-12);
}

TEST(GilbertElliott, StationaryOccupancyMatchesClosedForm) {
  GilbertElliott ge(burst_params());
  // One sample per link: samples across links use independent keyed
  // substreams, so the empirical mean is a 10k-draw estimate of pi.
  const int kLinks = 10000;
  int bad = 0;
  for (int i = 0; i < kLinks; ++i) {
    const auto a = static_cast<uint32_t>(2 * i);
    const auto b = static_cast<uint32_t>(2 * i + 1);
    if (ge.bad_at(a, b, 1.2345)) ++bad;
  }
  const double empirical = static_cast<double>(bad) / kLinks;
  // 3 binomial sigmas is ~0.014 at n = 10k; the draws are seeded, so
  // this never flakes — it fails only if the math drifts.
  EXPECT_NEAR(empirical, ge.stationary_bad(), 0.02);
}

TEST(GilbertElliott, TransitionFrequenciesAndBurstLengthMatchClosedForm) {
  GilbertElliott ge(burst_params());
  // Walk consecutive slots inside anchor blocks (a block boundary
  // restarts the chain from its stationary distribution, so only
  // within-block pairs are Markov transitions of the per-slot matrix).
  const int kLinks = 500;
  const int kSlots = 128;  // 4 blocks per link
  int64_t from_good = 0, good_to_bad = 0;
  int64_t from_bad = 0, bad_to_bad = 0;
  std::vector<int64_t> burst_lengths;
  for (int link = 0; link < kLinks; ++link) {
    const auto a = static_cast<uint32_t>(2 * link);
    const auto b = static_cast<uint32_t>(2 * link + 1);
    std::vector<bool> state(kSlots);
    for (int s = 0; s < kSlots; ++s) {
      state[s] = ge.bad_at(a, b, (s + 0.5) * ge.slot_s());
    }
    for (int s = 0; s + 1 < kSlots; ++s) {
      if (s % GilbertElliott::kBlockSlots ==
          GilbertElliott::kBlockSlots - 1) {
        continue;  // (s, s+1) straddles an anchor boundary
      }
      if (state[s]) {
        ++from_bad;
        if (state[s + 1]) ++bad_to_bad;
      } else {
        ++from_good;
        if (state[s + 1]) ++good_to_bad;
      }
    }
    // Complete bursts: bad runs strictly inside one block, with a good
    // slot on both sides. Their lengths are geometric(1 - p_bb).
    for (int block = 0; block < kSlots / GilbertElliott::kBlockSlots;
         ++block) {
      const int lo = block * GilbertElliott::kBlockSlots;
      const int hi = lo + GilbertElliott::kBlockSlots;
      int run = 0;
      for (int s = lo; s < hi; ++s) {
        if (state[s]) {
          ++run;
        } else {
          if (run > 0 && s - run > lo) burst_lengths.push_back(run);
          run = 0;
        }
      }
    }
  }
  ASSERT_GT(from_good, 10000);
  ASSERT_GT(from_bad, 10000);
  const double p_gb = static_cast<double>(good_to_bad) / from_good;
  const double p_bb = static_cast<double>(bad_to_bad) / from_bad;
  EXPECT_NEAR(p_gb, ge.p_enter_bad(), 0.02);
  EXPECT_NEAR(p_bb, ge.p_stay_bad(), 0.02);

  ASSERT_GT(burst_lengths.size(), 1000u);
  double sum = 0.0;
  for (int64_t len : burst_lengths) sum += static_cast<double>(len);
  const double mean_burst = sum / static_cast<double>(burst_lengths.size());
  // Geometric mean burst length 1/(1 - p_bb) ~ 3.8 slots; the
  // inside-one-block filter truncates long bursts slightly, so the
  // tolerance is looser than the transition-frequency ones.
  EXPECT_NEAR(mean_burst, 1.0 / (1.0 - ge.p_stay_bad()), 0.5);
}

TEST(GilbertElliott, StateIsAPureSymmetricFunction) {
  GilbertElliott ge(burst_params());
  common::Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint32_t>(rng.next_below(50));
    const auto b = static_cast<uint32_t>(rng.next_below(50));
    const double t = rng.uniform(0.0, 60.0);
    const bool s = ge.bad_at(a, b, t);
    EXPECT_EQ(s, ge.bad_at(a, b, t));  // repeatable
    EXPECT_EQ(s, ge.bad_at(b, a, t));  // unordered pair
  }
  // Different pairs / different link seeds decorrelate: both states must
  // occur somewhere.
  int bad = 0;
  for (uint32_t i = 0; i < 64; ++i) bad += ge.bad_at(i, i + 1, 0.5) ? 1 : 0;
  EXPECT_GT(bad, 0);
  EXPECT_LT(bad, 64);
}

TEST(GilbertElliott, RejectsSaturatedBadFraction) {
  ChannelParams cp = burst_params();
  cp.ge_bad_fraction = 1.0;
  EXPECT_THROW(GilbertElliott{cp}, std::invalid_argument);
  EXPECT_THROW(make_channel_model(cp), std::invalid_argument);
  cp.ge_bad_fraction = 0.0;
  EXPECT_FALSE(GilbertElliott{cp}.enabled());
}

// ---------------------------------------------------------------------
// 2. Fading moments vs closed form.
// ---------------------------------------------------------------------

TEST(Fading, RayleighPowerAndEnvelopeMomentsMatchTheory) {
  common::Rng rng(123);
  const int kDraws = 20000;
  double sum_g = 0.0, sum_g2 = 0.0, sum_env = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = std::pow(10.0, fading_gain_db(rng, 0.0) / 10.0);
    sum_g += g;
    sum_g2 += g * g;
    sum_env += std::sqrt(g);
  }
  const double mean = sum_g / kDraws;
  const double var = sum_g2 / kDraws - mean * mean;
  // Rayleigh power is Exp(1): mean 1, variance 1; the envelope mean is
  // sqrt(pi)/2.
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.1);
  EXPECT_NEAR(sum_env / kDraws, std::sqrt(3.14159265358979323846) / 2.0,
              0.02);
}

TEST(Fading, RicianPowerMomentsMatchTheory) {
  const double k = 4.0;
  common::Rng rng(321);
  const int kDraws = 20000;
  double sum_g = 0.0, sum_g2 = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = std::pow(10.0, fading_gain_db(rng, k) / 10.0);
    sum_g += g;
    sum_g2 += g * g;
  }
  const double mean = sum_g / kDraws;
  const double var = sum_g2 / kDraws - mean * mean;
  // Unit mean power by construction; Rician power variance is
  // (2K + 1) / (K + 1)^2.
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(var, (2.0 * k + 1.0) / ((k + 1.0) * (k + 1.0)), 0.05);
}

TEST(Fading, LargeKDegeneratesToNoFading) {
  common::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(fading_gain_db(rng, 1e8), 0.0, 0.01);
  }
}

TEST(Fading, UnknownStageNameThrows) {
  ChannelParams cp;
  cp.model = "log-distance";
  cp.fading = "nakagami";
  EXPECT_THROW(make_channel_model(cp), std::invalid_argument);
  EXPECT_EQ(channel_fading_names(),
            (std::vector<std::string>{"none", "rayleigh", "rician"}));
}

// ---------------------------------------------------------------------
// 3. Correlated shadowing covariance decays with distance.
// ---------------------------------------------------------------------

TEST(ShadowField, CovarianceDecaysAlongGaussianClosedForm) {
  const double sigma = 6.0, corr = 50.0;
  const double distances[] = {10.0, 25.0, 50.0, 150.0};
  const int kFields = 1500;
  // Sample each distance pair across independently seeded fields: the
  // cross-field ensemble is what the spectral construction's covariance
  // statement is about.
  double sum0 = 0.0, sum0_sq = 0.0;
  double sum_d[4] = {}, cross[4] = {};
  for (int f = 0; f < kFields; ++f) {
    ShadowField field(1000 + static_cast<uint64_t>(f), sigma, corr);
    ASSERT_TRUE(field.enabled());
    const double v0 = field.sample_db(100.0, 100.0);
    sum0 += v0;
    sum0_sq += v0 * v0;
    for (int d = 0; d < 4; ++d) {
      const double vd = field.sample_db(100.0 + distances[d], 100.0);
      sum_d[d] += vd;
      cross[d] += v0 * vd;
    }
  }
  const double mean0 = sum0 / kFields;
  const double var0 = sum0_sq / kFields - mean0 * mean0;
  // Marginal: ~N(0, sigma^2).
  EXPECT_NEAR(mean0, 0.0, 0.5);
  EXPECT_NEAR(var0, sigma * sigma, 4.0);
  double prev = 1.1;
  for (int d = 0; d < 4; ++d) {
    const double mean_d = sum_d[d] / kFields;
    const double cov = cross[d] / kFields - mean0 * mean_d;
    const double rho = cov / var0;
    const double expected =
        std::exp(-distances[d] * distances[d] / (2.0 * corr * corr));
    EXPECT_NEAR(rho, expected, 0.06) << "d=" << distances[d];
    EXPECT_LT(rho, prev) << "d=" << distances[d];  // strictly decaying
    prev = rho;
  }
}

TEST(ShadowField, SamplesArePureAndSeedKeyed) {
  ShadowField a(5, 6.0, 40.0), a2(5, 6.0, 40.0), b(6, 6.0, 40.0);
  EXPECT_DOUBLE_EQ(a.sample_db(12.0, 34.0), a2.sample_db(12.0, 34.0));
  EXPECT_NE(a.sample_db(12.0, 34.0), b.sample_db(12.0, 34.0));
  EXPECT_FALSE(ShadowField(5, 0.0, 40.0).enabled());
  EXPECT_FALSE(ShadowField(5, 6.0, 0.0).enabled());
  EXPECT_FALSE(ShadowField().enabled());
}

// ---------------------------------------------------------------------
// 4. SIR-adaptive bitrate.
// ---------------------------------------------------------------------

TEST(AdaptiveRate, TierLadderIsMonotoneAndBoundedByBaseRate) {
  ChannelParams cp;
  cp.model = "log-distance";
  cp.adaptive_rate = true;
  cp.rate_tiers = 4;
  cp.rate_sir_full_db = 10.0;
  cp.rate_step_db = 5.0;
  ChannelModelPtr ch = make_channel_model(cp);
  ASSERT_TRUE(ch->adaptive_rate());
  const double base = 11e6;
  double prev = 0.0;
  for (double sir = -30.0; sir <= 30.0; sir += 1.0) {
    const double rate = ch->select_rate_bps(base, sir);
    EXPECT_LE(rate, base);
    EXPECT_GE(rate, prev);  // more SIR never slows you down
    prev = rate;
  }
  EXPECT_DOUBLE_EQ(ch->select_rate_bps(base, 15.0), base);
  EXPECT_DOUBLE_EQ(ch->select_rate_bps(base, 7.0), base / 2.0);
  EXPECT_DOUBLE_EQ(ch->select_rate_bps(base, 2.0), base / 4.0);
  EXPECT_DOUBLE_EQ(ch->select_rate_bps(base, -20.0), base / 8.0);

  cp.rate_tiers = 0;
  EXPECT_THROW(make_channel_model(cp), std::invalid_argument);
}

TEST(AdaptiveRate, InterferenceExtendsAirtimeDeterministically) {
  // Two senders well inside each other's coverage. The second frame
  // starts while the first is on the air: with adaptive rate its SIR
  // estimate is negative, the tier ladder bottoms out, and its airtime
  // stretches by the full 2^(tiers-1) factor; an uncontended frame
  // stays at the base rate exactly.
  auto completion_us = [](bool adaptive, bool contended) {
    Scheduler sched;
    Medium::Params mp;
    mp.range_m = 60.0;
    mp.loss_rate = 0.0;
    mp.data_rate_bps = 1e6;
    mp.channel.model = "log-distance";
    mp.channel.softness_db = 0.0;
    mp.channel.adaptive_rate = adaptive;
    mp.channel.link_seed = 11;
    Medium medium(sched, mp, common::Rng(1));
    StationaryMobility a({0.0, 0.0});
    StationaryMobility b({20.0, 0.0});
    medium.add_node(&a, nullptr);
    medium.add_node(&b, nullptr);
    int64_t done_us = -1;
    sched.schedule_at(TimePoint{0}, [&] {
      if (contended) {
        auto f = std::make_shared<Frame>();
        f->sender = 0;
        f->payload = common::Bytes(5000, 0x1);
        f->kind = "jam";
        medium.transmit(f);
      }
      auto g = std::make_shared<Frame>();
      g->sender = 1;
      g->payload = common::Bytes(1000, 0x2);
      g->kind = "probe";
      medium.transmit(g, [&](const Medium::TxReport&) {
        done_us = sched.now().us;
      });
    });
    sched.run();
    EXPECT_GE(done_us, 0);
    return done_us;
  };

  const int64_t base_idle = completion_us(false, false);
  const int64_t adaptive_idle = completion_us(true, false);
  // No interferer: the adaptive path must charge exactly the base rate.
  EXPECT_EQ(adaptive_idle, base_idle);

  const int64_t base_jam = completion_us(false, true);
  const int64_t adaptive_jam = completion_us(true, true);
  EXPECT_GT(adaptive_jam, base_jam);
  // SIR ~ -14 dB at 20 m spacing bottoms the 4-tier ladder: 8x the
  // payload bits on the air (the 192 us preamble is rate-independent).
  const int64_t payload_us = 1000 * 8 + 34 * 8;  // bits at 1 Mbps
  EXPECT_EQ(adaptive_jam - base_jam, payload_us * 7);
}

// ---------------------------------------------------------------------
// 5. Determinism equivalence: grid vs brute force for every new model
// combination (the same randomized worlds the PR-5 suite pins).
// ---------------------------------------------------------------------

/// Seed-indexed knob combination: 12 seeds cover every subset of
/// {burst, fading, correlated shadowing} with both fading kinds, plus
/// adaptive rate on every third seed.
ChannelParams combo_params(uint64_t seed) {
  ChannelParams cp;
  cp.model = "log-distance";
  cp.path_loss_exponent = 3.0;
  cp.softness_db = 2.0;
  cp.link_seed = common::derive_seed(seed, 81);
  if (seed % 2 == 1) {
    cp.ge_bad_fraction = 0.3;
    cp.ge_mean_burst_ms = 50.0;
    cp.ge_slot_ms = 10.0;
  }
  switch ((seed / 2) % 3) {
    case 1:
      cp.fading = "rayleigh";
      break;
    case 2:
      cp.fading = "rician";
      cp.rician_k = 3.0;
      break;
    default:
      break;
  }
  if ((seed / 4) % 2 == 1) {
    cp.shadowing_sigma_db = 6.0;
    cp.shadowing_corr_m = 40.0;
  }
  if (seed % 3 == 0) cp.adaptive_rate = true;
  return cp;
}

class BurstStackEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BurstStackEquivalence, GridMatchesBruteForceExactly) {
  const uint64_t seed = GetParam();
  const ChannelParams cp = combo_params(seed);
  World grid, brute;
  build_world(grid, seed, /*brute=*/false, &cp);
  build_world(brute, seed, /*brute=*/true, &cp);
  grid.sched.run();
  brute.sched.run();

  ASSERT_EQ(grid.log.size(), brute.log.size());
  for (size_t i = 0; i < grid.log.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(grid.log[i], brute.log[i]);
  }
  EXPECT_EQ(world_hash(grid), world_hash(brute));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstStackEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace dapes::sim

// ---------------------------------------------------------------------
// 6. Harness-level determinism: --jobs and --trial-threads identity for
// the new models, and the link_seed foot-gun closure.
// ---------------------------------------------------------------------

namespace dapes::harness {
namespace {

void expect_equal(const TrialResult& a, const TrialResult& b) {
  EXPECT_DOUBLE_EQ(a.download_time_s, b.download_time_s);
  EXPECT_DOUBLE_EQ(a.completion_fraction, b.completion_fraction);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.tx_by_kind, b.tx_by_kind);
  EXPECT_EQ(a.collided_frames, b.collided_frames);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

/// Tiny but traffic-bearing loss.sweep world with a channel-stack knob
/// hook per combination.
ScenarioParams stack_params(uint64_t seed) {
  ScenarioParams p;
  p.files = 1;
  p.file_size_bytes = 8 * 1024;
  p.mobile_downloaders = 8;
  p.stationary_downloaders = 2;
  p.pure_forwarders = 3;
  p.dapes_intermediates = 3;
  p.wifi_range_m = 80.0;
  p.data_rate_bps = 11e6;
  p.sim_limit_s = 120.0;
  p.seed = seed;
  p.channel.model = "log-distance";
  return p;
}

struct StackCombo {
  const char* label;
  std::function<void(ScenarioParams&)> apply;
};

std::vector<StackCombo> stack_combos() {
  return {
      {"burst",
       [](ScenarioParams& p) {
         p.channel.ge_bad_fraction = 0.3;
         p.channel.ge_mean_burst_ms = 50.0;
       }},
      {"rayleigh+corr-shadow",
       [](ScenarioParams& p) {
         p.channel.fading = "rayleigh";
         p.channel.shadowing_sigma_db = 5.0;
         p.channel.shadowing_corr_m = 40.0;
       }},
      {"rician+adaptive",
       [](ScenarioParams& p) {
         p.channel.fading = "rician";
         p.channel.rician_k = 3.0;
         p.channel.adaptive_rate = true;
       }},
      {"everything",
       [](ScenarioParams& p) {
         p.channel.ge_bad_fraction = 0.2;
         p.channel.ge_mean_burst_ms = 80.0;
         p.channel.fading = "rician";
         p.channel.rician_k = 4.0;
         p.channel.shadowing_sigma_db = 4.0;
         p.channel.shadowing_corr_m = 60.0;
         p.channel.adaptive_rate = true;
       }},
  };
}

TEST(BurstStackEngines, TrialThreadsOneTwoFourMatchSerialExactly) {
  uint64_t seed = 3;
  for (const StackCombo& combo : stack_combos()) {
    SCOPED_TRACE(combo.label);
    ScenarioParams p = stack_params(seed++);
    combo.apply(p);
    TrialResult serial = run_trial(ProtocolNames::kLossSweep, p);
    ASSERT_GT(serial.transmissions, 0u);
    for (int lanes : {1, 2, 4}) {
      SCOPED_TRACE(lanes);
      ScenarioParams q = p;
      q.trial_threads = lanes;
      expect_equal(serial, run_trial(ProtocolNames::kLossSweep, q));
    }
  }
}

TEST(BurstStackEngines, SweepJobsOneAndEightBitIdentical) {
  // The new sweep axes (burst length, K-factor) under parallel trial
  // dispatch: --jobs must not change a single bit of any metric.
  SweepSpec spec;
  spec.title = "burst/kfactor jobs identity";
  spec.base.files = 1;
  spec.base.file_size_bytes = 4 * 1024;
  spec.base.sim_limit_s = 20.0;
  spec.base.seed = 42;
  spec.trials = 2;
  spec.axis.label = "burst_ms";
  spec.axis.values = {30.0, 200.0};
  spec.axis.apply = [](ScenarioParams& p, double x) {
    p.channel.ge_mean_burst_ms = x;
  };
  spec.series.push_back({"burst", ProtocolNames::kLossSweep,
                         [](ScenarioParams& p) {
                           p.channel.ge_bad_fraction = 0.3;
                         }});
  spec.series.push_back({"burst+rician", ProtocolNames::kLossSweep,
                         [](ScenarioParams& p) {
                           p.channel.ge_bad_fraction = 0.3;
                           p.channel.fading = "rician";
                           p.channel.rician_k = 2.0;
                           p.channel.adaptive_rate = true;
                         }});
  spec.metrics = {download_time_metric(), transmissions_k_metric(),
                  completion_metric()};

  SweepResult serial = run_sweep(spec, TrialRunner(1));
  SweepResult parallel = run_sweep(spec, TrialRunner(8));
  ASSERT_EQ(serial.values.size(), parallel.values.size());
  for (size_t m = 0; m < serial.values.size(); ++m) {
    for (size_t s = 0; s < serial.values[m].size(); ++s) {
      for (size_t x = 0; x < serial.values[m][s].size(); ++x) {
        EXPECT_EQ(serial.values[m][s][x], parallel.values[m][s][x])
            << "metric=" << m << " series=" << s << " x=" << x;
      }
    }
  }
}

// ---------------------------------------------------------------------
// 7. The link_seed foot-gun is closed at the harness layer.
// ---------------------------------------------------------------------

TEST(LinkSeedFootGun, TopologyAlwaysInstallsAPerTrialLinkSeed) {
  ScenarioParams p = stack_params(1);
  ASSERT_EQ(p.channel.link_seed, 0u) << "default must start unset";
  uint64_t first = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    Topology topo(p, seed, "/linkseed-test", "/linkseed-key", "file-");
    const uint64_t installed = topo.medium->params().channel.link_seed;
    // Never the shared-across-trials 0 stream, and distinct per trial.
    EXPECT_NE(installed, 0u) << "seed=" << seed;
    EXPECT_NE(installed, first) << "seed=" << seed;
    if (seed == 1) first = installed;
  }
}

TEST(LinkSeedFootGun, ExplicitLinkSeedIsPreserved) {
  ScenarioParams p = stack_params(1);
  p.channel.link_seed = 0xdeadbeefULL;
  Topology topo(p, 7, "/linkseed-test", "/linkseed-key", "file-");
  EXPECT_EQ(topo.medium->params().channel.link_seed, 0xdeadbeefULL);
}

}  // namespace
}  // namespace dapes::harness
