// Unit tests for advertisement prioritization and PEBA (paper §IV-F).
#include <gtest/gtest.h>

#include "dapes/peba.hpp"

namespace dapes::core {
namespace {

TEST(Peba, PriorityDelayDecreasesWithFraction) {
  PebaScheduler peba;
  // More to offer => earlier timer (the paper's A-goes-first rule).
  EXPECT_LT(peba.priority_delay(1.0), peba.priority_delay(0.5));
  EXPECT_LT(peba.priority_delay(0.5), peba.priority_delay(0.25));
  EXPECT_LT(peba.priority_delay(0.25), peba.priority_delay(0.05));
}

TEST(Peba, PriorityDelayAtFullFractionIsWindow) {
  PebaScheduler peba;
  EXPECT_EQ(peba.priority_delay(1.0), peba.params().window);
}

TEST(Peba, PriorityDelayIsWindowDividedByFraction) {
  PebaScheduler peba;
  // The paper's rule: window / percent.
  EXPECT_EQ(peba.priority_delay(0.5).us, peba.params().window.us * 2);
  EXPECT_EQ(peba.priority_delay(0.25).us, peba.params().window.us * 4);
}

TEST(Peba, ZeroFractionCapped) {
  PebaScheduler peba;
  EXPECT_EQ(peba.priority_delay(0.0), peba.max_delay());
  EXPECT_LE(peba.priority_delay(0.001).us, peba.max_delay().us);
}

TEST(Peba, SlotsDoublePerRound) {
  PebaScheduler peba;
  EXPECT_EQ(peba.slots_for_round(1), 2);
  EXPECT_EQ(peba.slots_for_round(2), 4);
  EXPECT_EQ(peba.slots_for_round(3), 8);
}

TEST(Peba, SlotsCappedAtMaxRounds) {
  PebaScheduler::Params params;
  params.max_rounds = 4;
  PebaScheduler peba(params);
  EXPECT_EQ(peba.slots_for_round(4), 16);
  EXPECT_EQ(peba.slots_for_round(9), 16);
  EXPECT_EQ(peba.slots_for_round(0), 2);  // clamped low as well
}

TEST(Peba, GroupAssignmentTwoGroups) {
  PebaScheduler peba;
  // >= half of the missing packets -> first group (paper example).
  EXPECT_EQ(peba.group_for_fraction(1.0), 0);
  EXPECT_EQ(peba.group_for_fraction(0.6), 0);
  EXPECT_EQ(peba.group_for_fraction(0.5), 0);
  EXPECT_EQ(peba.group_for_fraction(0.4), 1);
  EXPECT_EQ(peba.group_for_fraction(0.0), 1);
}

TEST(Peba, GroupAssignmentFourGroups) {
  PebaScheduler::Params params;
  params.groups = 4;
  PebaScheduler peba(params);
  EXPECT_EQ(peba.group_for_fraction(0.9), 0);
  EXPECT_EQ(peba.group_for_fraction(0.7), 1);
  EXPECT_EQ(peba.group_for_fraction(0.3), 2);
  EXPECT_EQ(peba.group_for_fraction(0.1), 3);
}

TEST(Peba, BackoffHighFractionEarlierSlots) {
  PebaScheduler peba;
  common::Rng rng(3);
  // Round 2: 4 slots, 2 per group. Group 0 slots {0,1}, group 1 {2,3}.
  for (int i = 0; i < 50; ++i) {
    common::Duration high = peba.backoff_delay(2, 0.9, rng);
    common::Duration low = peba.backoff_delay(2, 0.1, rng);
    int high_slot = static_cast<int>(high.us / peba.params().slot.us);
    int low_slot = static_cast<int>(low.us / peba.params().slot.us);
    EXPECT_LT(high_slot, 2);
    EXPECT_GE(low_slot, 2);
    EXPECT_LT(low_slot, 4);
  }
}

TEST(Peba, BackoffWithinTotalSlotRange) {
  PebaScheduler peba;
  common::Rng rng(5);
  for (int round = 1; round <= 6; ++round) {
    for (int i = 0; i < 100; ++i) {
      double fraction = rng.uniform01();
      common::Duration d = peba.backoff_delay(round, fraction, rng);
      EXPECT_GE(d.us, 0);
      EXPECT_LT(d.us, peba.params().slot.us * peba.slots_for_round(round));
    }
  }
}

TEST(Peba, BackoffSpreadsWithinGroup) {
  // With enough slots, same-group peers should not always pick the same
  // slot (the collision-resolution property).
  PebaScheduler peba;
  common::Rng rng(7);
  std::set<int64_t> delays;
  for (int i = 0; i < 64; ++i) {
    delays.insert(peba.backoff_delay(4, 0.9, rng).us);  // 16 slots, 8/group
  }
  EXPECT_GT(delays.size(), 3u);
}

TEST(Peba, PaperExampleRoundOne) {
  // Fig. 5: six packets missing from A's bitmap; C has three (fraction
  // 0.5 -> group 0), B has two and D one (fractions < 0.5 -> group 1).
  PebaScheduler peba;
  EXPECT_EQ(peba.group_for_fraction(3.0 / 6.0), 0);  // C
  EXPECT_EQ(peba.group_for_fraction(2.0 / 6.0), 1);  // B
  EXPECT_EQ(peba.group_for_fraction(1.0 / 6.0), 1);  // D
}

}  // namespace
}  // namespace dapes::core
