// Unit tests for the NFD-lite forwarding pipeline (paper Fig. 1):
// CS hit -> PIT aggregation -> strategy forwarding; data return paths;
// unsolicited data handling; hop limits and loop suppression.
#include <gtest/gtest.h>

#include "ndn/forwarder.hpp"
#include "sim/scheduler.hpp"

namespace dapes::ndn {
namespace {

using common::bytes_of;

/// A face that records what the forwarder pushes into it and exposes
/// inject helpers (stands in for both app and network endpoints).
class MockFace : public Face {
 public:
  explicit MockFace(bool local) : local_(local) {}

  void send_interest(const Interest& interest) override {
    sent_interests.push_back(interest);
  }
  void send_data(const Data& data) override { sent_data.push_back(data); }
  bool is_local() const override { return local_; }

  void inject(const Interest& interest) { deliver_interest(interest); }
  void inject(const Data& data) { deliver_data(data); }

  std::vector<Interest> sent_interests;
  std::vector<Data> sent_data;

 private:
  bool local_;
};

/// Strategy stub: floods to every other face, records calls.
class RecordingStrategy : public ForwardingStrategy {
 public:
  void after_receive_interest(Forwarder& fw, FaceId in_face,
                              const Interest& interest,
                              PitEntry& /*entry*/) override {
    ++interests_handled;
    for (const auto& face : fw.faces()) {
      if (face->id() != in_face) fw.send_interest_to(face->id(), interest);
    }
  }
  void on_interest_timeout(Forwarder&, const Name&) override { ++timeouts; }
  bool cache_unsolicited(Forwarder&, FaceId, const Data&) override {
    ++unsolicited;
    return cache_unsolicited_flag;
  }
  void on_overhear_interest(Forwarder&, FaceId, const Interest&) override {
    ++overheard_interests;
  }
  void on_overhear_data(Forwarder&, FaceId, const Data&) override {
    ++overheard_data;
  }

  int interests_handled = 0;
  int timeouts = 0;
  int unsolicited = 0;
  int overheard_interests = 0;
  int overheard_data = 0;
  bool cache_unsolicited_flag = false;
};

struct ForwarderTest : ::testing::Test {
  sim::Scheduler sched;
  Forwarder fw{sched};
  std::shared_ptr<MockFace> wifi = std::make_shared<MockFace>(false);
  std::shared_ptr<MockFace> app = std::make_shared<MockFace>(true);
  RecordingStrategy* strategy = nullptr;

  void SetUp() override {
    fw.add_face(wifi);
    fw.add_face(app);
    auto s = std::make_unique<RecordingStrategy>();
    strategy = s.get();
    fw.set_strategy(std::move(s));
  }

  Interest interest(const std::string& uri, uint32_t nonce = 1) {
    Interest i{Name(uri)};
    i.set_nonce(nonce);
    i.set_lifetime(common::Duration::milliseconds(500));
    return i;
  }

  Data data(const std::string& uri) {
    Data d{Name(uri)};
    d.set_content(bytes_of("payload"));
    d.set_freshness(common::Duration::seconds(100.0));
    return d;
  }
};

TEST_F(ForwarderTest, InterestReachesStrategyAndForwards) {
  app->inject(interest("/a/1"));
  EXPECT_EQ(strategy->interests_handled, 1);
  ASSERT_EQ(wifi->sent_interests.size(), 1u);
  EXPECT_EQ(wifi->sent_interests[0].name().to_uri(), "/a/1");
}

TEST_F(ForwarderTest, CsHitAnswersWithoutStrategy) {
  // Prime the CS via a satisfied exchange.
  app->inject(interest("/a/1", 1));
  wifi->inject(data("/a/1"));
  ASSERT_EQ(app->sent_data.size(), 1u);

  // Second interest (different nonce) hits the CS.
  app->inject(interest("/a/1", 2));
  EXPECT_EQ(strategy->interests_handled, 1);  // not called again
  EXPECT_EQ(app->sent_data.size(), 2u);
  EXPECT_EQ(fw.stats().cs_hits, 1u);
}

TEST_F(ForwarderTest, PitAggregatesSameName) {
  wifi->inject(interest("/agg/1", 10));
  app->inject(interest("/agg/1", 11));
  EXPECT_EQ(strategy->interests_handled, 1);
  EXPECT_EQ(fw.stats().pit_aggregated, 1u);
  // Data satisfies both in-faces.
  wifi->inject(data("/agg/1"));
  EXPECT_EQ(app->sent_data.size(), 1u);
  // The wifi face was the data's in-face, so it is not echoed back.
  EXPECT_TRUE(wifi->sent_data.empty());
}

TEST_F(ForwarderTest, DuplicateNonceDropped) {
  wifi->inject(interest("/loop/1", 42));
  wifi->inject(interest("/loop/1", 42));
  EXPECT_EQ(fw.stats().loops_dropped, 1u);
  EXPECT_EQ(strategy->interests_handled, 1);
}

TEST_F(ForwarderTest, DeadNonceStopsLateLoops) {
  wifi->inject(interest("/dead/1", 7));
  wifi->inject(data("/dead/1"));  // satisfies + records dead nonce
  wifi->inject(interest("/dead/1", 7));
  EXPECT_EQ(fw.stats().loops_dropped, 1u);
}

TEST_F(ForwarderTest, UnsolicitedDataHitsStrategyHook) {
  wifi->inject(data("/nobody/asked"));
  EXPECT_EQ(strategy->unsolicited, 1);
  EXPECT_EQ(fw.stats().unsolicited_data, 1u);
  EXPECT_FALSE(fw.cs().contains(Name("/nobody/asked")));
}

TEST_F(ForwarderTest, UnsolicitedDataCachedWhenStrategySaysSo) {
  strategy->cache_unsolicited_flag = true;
  wifi->inject(data("/pure/forwarder/cache"));
  EXPECT_TRUE(fw.cs().contains(Name("/pure/forwarder/cache")));
}

TEST_F(ForwarderTest, OverhearHooksFireOnlyForNetworkFaces) {
  wifi->inject(interest("/o/1", 1));
  app->inject(interest("/o/2", 2));
  EXPECT_EQ(strategy->overheard_interests, 1);
  wifi->inject(data("/o/1"));
  EXPECT_EQ(strategy->overheard_data, 1);
}

TEST_F(ForwarderTest, HopLimitExhaustedInterestDropped) {
  Interest i = interest("/hops/1");
  i.set_hop_limit(0);
  wifi->inject(i);
  EXPECT_EQ(fw.stats().hop_limit_drops, 1u);
  EXPECT_EQ(strategy->interests_handled, 0);
}

TEST_F(ForwarderTest, HopLimitDecrementsFromNetworkOnly) {
  Interest i = interest("/hops/2");
  i.set_hop_limit(5);
  wifi->inject(i);
  ASSERT_FALSE(app->sent_interests.empty());
  EXPECT_EQ(app->sent_interests[0].hop_limit(), 4);

  Interest j = interest("/hops/3");
  j.set_hop_limit(5);
  app->inject(j);
  ASSERT_FALSE(wifi->sent_interests.empty());
  EXPECT_EQ(wifi->sent_interests.back().hop_limit(), 5);  // local: no decrement
}

TEST_F(ForwarderTest, PitExpiryFiresStrategyTimeout) {
  wifi->inject(interest("/exp/1"));
  sched.run_until(common::TimePoint{2000000});
  EXPECT_EQ(strategy->timeouts, 1);
  EXPECT_EQ(fw.stats().pit_timeouts, 1u);
  EXPECT_EQ(fw.pit().size(), 0u);
}

TEST_F(ForwarderTest, DataCancelsPitExpiry) {
  wifi->inject(interest("/sat/1"));
  wifi->inject(data("/sat/1"));
  sched.run_until(common::TimePoint{2000000});
  EXPECT_EQ(strategy->timeouts, 0);
}

TEST_F(ForwarderTest, CanBePrefixSatisfiedByLongerName) {
  Interest i = interest("/pre");
  i.set_can_be_prefix(true);
  app->inject(i);
  wifi->inject(data("/pre/long/name"));
  ASSERT_EQ(app->sent_data.size(), 1u);
  EXPECT_EQ(app->sent_data[0].name().to_uri(), "/pre/long/name");
}

TEST_F(ForwarderTest, SolicitedDataIsCached) {
  app->inject(interest("/cache/1"));
  wifi->inject(data("/cache/1"));
  EXPECT_TRUE(fw.cs().contains(Name("/cache/1")));
}

TEST_F(ForwarderTest, MulticastStrategyUsesFib) {
  // Swap in the default strategy and register a route.
  fw.set_strategy(std::make_unique<MulticastStrategy>());
  fw.fib().add_route(Name("/fib"), wifi->id());
  app->inject(interest("/fib/x"));
  ASSERT_EQ(wifi->sent_interests.size(), 1u);
  // No route for other names.
  app->inject(interest("/nowhere"));
  EXPECT_EQ(wifi->sent_interests.size(), 1u);
}

}  // namespace
}  // namespace dapes::ndn
