// Unit tests for the IP-lite substrate: packets, node demux, UDP, TCP.
#include <gtest/gtest.h>

#include "ip/node.hpp"
#include "ip/packet.hpp"
#include "ip/tcp.hpp"
#include "ip/udp.hpp"
#include "manet/dsdv.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::ip {
namespace {

using common::bytes_of;

TEST(IpPacket, RoundTrip) {
  Packet p;
  p.src = 1;
  p.dst = 9;
  p.next_hop = 5;
  p.proto = Proto::kTcp;
  p.ttl = 7;
  p.route = {1, 5, 9};
  p.route_pos = 1;
  p.payload = bytes_of("segment");
  auto wire = p.encode();
  auto decoded = Packet::decode(common::BytesView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST(IpPacket, RejectsWrongMagic) {
  Packet p;
  p.payload = bytes_of("x");
  auto wire = p.encode();
  wire[0] = 0x06;  // NDN data magic, not IP
  EXPECT_FALSE(Packet::decode(common::BytesView(wire.data(), wire.size()))
                   .has_value());
}

TEST(IpPacket, RejectsTruncated) {
  Packet p;
  p.payload = bytes_of("hello");
  auto wire = p.encode();
  wire.pop_back();
  EXPECT_FALSE(Packet::decode(common::BytesView(wire.data(), wire.size()))
                   .has_value());
}

struct IpStackTest : ::testing::Test {
  sim::Scheduler sched;
  sim::StationaryMobility pos_a{{0, 0}};
  sim::StationaryMobility pos_b{{30, 0}};
  common::Rng rng{5};

  sim::Medium::Params medium_params(double loss = 0.0) {
    sim::Medium::Params p;
    p.range_m = 50;
    p.loss_rate = loss;
    return p;
  }
};

TEST_F(IpStackTest, AddressMapping) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  Node a(sched, medium, &pos_a, rng.fork());
  Node b(sched, medium, &pos_b, rng.fork());
  EXPECT_NE(a.address(), b.address());
  EXPECT_EQ(node_of(a.address()), a.node_id());
}

TEST_F(IpStackTest, UnicastFilteredByNextHop) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  Node a(sched, medium, &pos_a, rng.fork());
  Node b(sched, medium, &pos_b, rng.fork());
  int received = 0;
  b.register_handler(Proto::kUdp, [&](const Packet&) { ++received; });

  Packet to_b;
  to_b.dst = b.address();
  to_b.next_hop = b.address();
  to_b.proto = Proto::kUdp;
  a.send_link(to_b, "test");

  Packet to_other;
  to_other.dst = b.address();
  to_other.next_hop = 0xdead;  // not b: link-layer filtered
  to_other.proto = Proto::kUdp;
  a.send_link(to_other, "test");

  sched.run();
  EXPECT_EQ(received, 1);
}

TEST_F(IpStackTest, UdpPortDemux) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  Node a(sched, medium, &pos_a, rng.fork());
  Node b(sched, medium, &pos_b, rng.fork());
  a.set_routing(std::make_unique<manet::Dsdv>());
  b.set_routing(std::make_unique<manet::Dsdv>());
  UdpLite ua(a), ub(b);
  std::string got;
  ub.bind(7, [&](Address, uint16_t src_port, const common::Bytes& d) {
    got.assign(d.begin(), d.end());
    EXPECT_EQ(src_port, 3);
  });
  ub.bind(8, [&](Address, uint16_t, const common::Bytes&) { ADD_FAILURE(); });
  // Wait for DSDV to learn the route, then send.
  sched.run_until(common::TimePoint{20000000});
  ua.send(b.address(), 3, 7, bytes_of("datagram"));
  sched.run_until(common::TimePoint{21000000});
  EXPECT_EQ(got, "datagram");
}

TEST_F(IpStackTest, TcpDeliversOrderedMessage) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  Node a(sched, medium, &pos_a, rng.fork());
  Node b(sched, medium, &pos_b, rng.fork());
  a.set_routing(std::make_unique<manet::Dsdv>());
  b.set_routing(std::make_unique<manet::Dsdv>());
  TcpLite ta(a), tb(b);
  std::vector<std::string> messages;
  tb.set_receive_callback([&](Address, const common::Bytes& m) {
    messages.emplace_back(m.begin(), m.end());
  });
  sched.run_until(common::TimePoint{20000000});
  // A multi-segment message (mss 1200): 3000 bytes -> 3 segments.
  std::string big(3000, 'M');
  ta.send(b.address(), bytes_of(big));
  ta.send(b.address(), bytes_of("second"));
  sched.run_until(common::TimePoint{30000000});
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0], big);
  EXPECT_EQ(messages[1], "second");
}

TEST_F(IpStackTest, TcpRetransmitsUnderLoss) {
  sim::Medium medium(sched, medium_params(0.3), rng.fork());
  Node a(sched, medium, &pos_a, rng.fork());
  Node b(sched, medium, &pos_b, rng.fork());
  a.set_routing(std::make_unique<manet::Dsdv>());
  b.set_routing(std::make_unique<manet::Dsdv>());
  TcpLite ta(a), tb(b);
  int delivered = 0;
  tb.set_receive_callback([&](Address, const common::Bytes&) { ++delivered; });
  sched.run_until(common::TimePoint{40000000});
  for (int i = 0; i < 5; ++i) {
    ta.send(b.address(), bytes_of("msg-" + std::to_string(i)));
  }
  sched.run_until(common::TimePoint{120000000});
  EXPECT_EQ(delivered, 5);
  EXPECT_GT(ta.retransmissions(), 0u);
}

TEST_F(IpStackTest, TcpFailsWhenPeerUnreachable) {
  sim::Medium medium(sched, medium_params(), rng.fork());
  sim::StationaryMobility far{{5000, 0}};
  Node a(sched, medium, &pos_a, rng.fork());
  Node b(sched, medium, &far, rng.fork());
  a.set_routing(std::make_unique<manet::Dsdv>());
  b.set_routing(std::make_unique<manet::Dsdv>());
  TcpLite ta(a), tb(b);
  int failures = 0;
  ta.set_failure_callback([&](Address) { ++failures; });
  sched.run_until(common::TimePoint{5000000});
  ta.send(b.address(), bytes_of("void"));
  sched.run_until(common::TimePoint{200000000});
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(ta.failures(), 1u);
}

}  // namespace
}  // namespace dapes::ip
