// Unit tests for the multi-hop forwarding strategies (paper §V): pure
// forwarders (probabilistic relay + suppression) and DAPES intermediates
// (knowledge-driven forward/suppress).
#include <gtest/gtest.h>

#include "dapes/strategies.hpp"
#include "sim/scheduler.hpp"

namespace dapes::core {
namespace {

using common::bytes_of;
using ndn::Data;
using ndn::Interest;

class LoopbackFace : public ndn::Face {
 public:
  explicit LoopbackFace(bool local) : local_(local) {}
  void send_interest(const Interest& i) override { sent_interests.push_back(i); }
  void send_data(const Data& d) override { sent_data.push_back(d); }
  bool is_local() const override { return local_; }
  void inject(const Interest& i) { deliver_interest(i); }
  void inject(const Data& d) { deliver_data(d); }
  std::vector<Interest> sent_interests;
  std::vector<Data> sent_data;

 private:
  bool local_;
};

Interest make_interest(const std::string& uri, uint32_t nonce) {
  Interest i{ndn::Name(uri)};
  i.set_nonce(nonce);
  i.set_lifetime(common::Duration::milliseconds(300));
  return i;
}

struct StrategyTest : ::testing::Test {
  sim::Scheduler sched;
  ndn::Forwarder fw{sched};
  std::shared_ptr<LoopbackFace> wifi = std::make_shared<LoopbackFace>(false);
  std::shared_ptr<LoopbackFace> app = std::make_shared<LoopbackFace>(true);

  void SetUp() override {
    fw.add_face(wifi);
    fw.add_face(app);
  }

  void use_pure(double probability) {
    PureForwarderStrategy::Params p;
    p.forward_probability = probability;
    p.forward_delay_window = common::Duration::milliseconds(10);
    fw.set_strategy(std::make_unique<PureForwarderStrategy>(
        sched, common::Rng(1), p));
  }

  DapesIntermediateStrategy* use_intermediate(double probability) {
    DapesIntermediateStrategy::IntermediateParams p;
    p.base.forward_probability = probability;
    p.base.forward_delay_window = common::Duration::milliseconds(10);
    auto s = std::make_unique<DapesIntermediateStrategy>(sched,
                                                         common::Rng(1), p);
    auto* raw = s.get();
    fw.set_strategy(std::move(s));
    return raw;
  }

  BitmapMessage bitmap_msg(const std::string& peer,
                           std::initializer_list<size_t> held) {
    BitmapMessage msg;
    msg.peer_id = peer;
    msg.collection = ndn::Name("/coll");
    msg.layout = {{"file", 10}};
    msg.bitmap = Bitmap(10);
    for (size_t i : held) msg.bitmap.set(i);
    return msg;
  }

  Interest bitmap_interest(const BitmapMessage& msg, uint32_t nonce) {
    Interest i{bitmap_data_name(msg.collection, msg.peer_id, msg.round)};
    i.set_nonce(nonce);
    i.set_app_parameters(msg.encode());
    return i;
  }
};

TEST_F(StrategyTest, PureForwarderRelaysWithProbabilityOne) {
  use_pure(1.0);
  wifi->inject(make_interest("/coll/file/1", 1));
  sched.run_until(common::TimePoint{50000});
  ASSERT_EQ(wifi->sent_interests.size(), 1u);
  EXPECT_EQ(wifi->sent_interests[0].name().to_uri(), "/coll/file/1");
}

TEST_F(StrategyTest, PureForwarderNeverRelaysAtZero) {
  use_pure(0.0);
  wifi->inject(make_interest("/coll/file/1", 1));
  sched.run_until(common::TimePoint{50000});
  EXPECT_TRUE(wifi->sent_interests.empty());
}

TEST_F(StrategyTest, RelayWaitsForRandomDelay) {
  use_pure(1.0);
  wifi->inject(make_interest("/coll/file/1", 1));
  // Relay is scheduled, not synchronous.
  EXPECT_TRUE(wifi->sent_interests.empty());
  sched.run_until(common::TimePoint{20000});
  EXPECT_EQ(wifi->sent_interests.size(), 1u);
}

TEST_F(StrategyTest, RelaySuppressedIfDataArrivesFirst) {
  use_pure(1.0);
  wifi->inject(make_interest("/coll/file/1", 1));
  // Data satisfies the PIT before the relay timer fires.
  Data d{ndn::Name("/coll/file/1")};
  d.set_content(bytes_of("x"));
  wifi->inject(d);
  sched.run_until(common::TimePoint{50000});
  EXPECT_TRUE(wifi->sent_interests.empty());
}

TEST_F(StrategyTest, SuppressionTimerAfterFruitlessForward) {
  use_pure(1.0);
  wifi->inject(make_interest("/dead/end", 1));
  // Let the relay fire and the PIT expire without data.
  sched.run_until(common::TimePoint{1000000});
  auto* strategy = static_cast<PureForwarderStrategy*>(&fw.strategy());
  EXPECT_EQ(strategy->relay_timeouts(), 1u);
  // Same name again: suppressed, not relayed.
  size_t sent_before = wifi->sent_interests.size();
  wifi->inject(make_interest("/dead/end", 2));
  sched.run_until(common::TimePoint{1500000});
  EXPECT_EQ(wifi->sent_interests.size(), sent_before);
  EXPECT_GT(strategy->suppressions(), 0u);
}

TEST_F(StrategyTest, PureForwarderCachesOverheardData) {
  use_pure(0.2);
  Data d{ndn::Name("/overheard/data")};
  d.set_content(bytes_of("x"));
  d.set_freshness(common::Duration::seconds(100.0));
  wifi->inject(d);
  EXPECT_TRUE(fw.cs().contains(ndn::Name("/overheard/data")));
}

TEST_F(StrategyTest, LocalInterestAlwaysGoesToAir) {
  use_pure(0.0);  // even at zero probability
  app->inject(make_interest("/anything", 1));
  EXPECT_EQ(wifi->sent_interests.size(), 1u);
}

TEST_F(StrategyTest, NetworkInterestDeliveredToLocalApp) {
  use_pure(0.0);
  fw.fib().add_route(ndn::Name("/svc"), app->id());
  wifi->inject(make_interest("/svc/req", 1));
  ASSERT_EQ(app->sent_interests.size(), 1u);
  EXPECT_EQ(app->sent_interests[0].name().to_uri(), "/svc/req");
}

TEST_F(StrategyTest, IntermediateLearnsFromBitmapAnnouncement) {
  auto* s = use_intermediate(0.0);
  wifi->inject(bitmap_interest(bitmap_msg("B", {3, 4}), 1));
  EXPECT_EQ(s->packet_availability(ndn::Name("/coll/file/3"), sched.now()),
            DapesIntermediateStrategy::Availability::kAvailable);
  EXPECT_EQ(s->packet_availability(ndn::Name("/coll/file/7"), sched.now()),
            DapesIntermediateStrategy::Availability::kKnownMissing);
  EXPECT_EQ(s->packet_availability(ndn::Name("/other/file/0"), sched.now()),
            DapesIntermediateStrategy::Availability::kUnknown);
  EXPECT_TRUE(s->collection_active(ndn::Name("/coll"), sched.now()));
  EXPECT_GT(s->knowledge_bytes(), 0u);
}

TEST_F(StrategyTest, IntermediateForwardsKnownAvailable) {
  auto* s = use_intermediate(0.0);  // prob 0: only knowledge can forward
  wifi->inject(bitmap_interest(bitmap_msg("B", {5}), 1));
  wifi->inject(make_interest("/coll/file/5", 2));
  sched.run_until(common::TimePoint{100000});
  // The bitmap announcement itself may be relayed via the control path
  // (collection_active), so look for the data interest specifically.
  bool relayed_data = false;
  for (const auto& i : wifi->sent_interests) {
    if (i.name().to_uri() == "/coll/file/5") relayed_data = true;
  }
  EXPECT_TRUE(relayed_data);
  EXPECT_EQ(s->knowledge_forwards(), 1u);
}

TEST_F(StrategyTest, IntermediateSuppressesKnownMissing) {
  auto* s = use_intermediate(1.0);  // even at prob 1: knowledge wins
  wifi->inject(bitmap_interest(bitmap_msg("B", {5}), 1));
  wifi->inject(make_interest("/coll/file/7", 2));
  sched.run_until(common::TimePoint{100000});
  for (const auto& i : wifi->sent_interests) {
    EXPECT_NE(i.name().to_uri(), "/coll/file/7");
  }
  EXPECT_EQ(s->knowledge_suppressions(), 1u);
}

TEST_F(StrategyTest, IntermediateKnowledgeExpires) {
  DapesIntermediateStrategy::IntermediateParams p;
  p.knowledge_ttl = common::Duration::milliseconds(100);
  auto s = std::make_unique<DapesIntermediateStrategy>(sched, common::Rng(1), p);
  auto* raw = s.get();
  fw.set_strategy(std::move(s));
  wifi->inject(bitmap_interest(bitmap_msg("B", {5}), 1));
  EXPECT_EQ(raw->packet_availability(ndn::Name("/coll/file/5"), sched.now()),
            DapesIntermediateStrategy::Availability::kAvailable);
  sched.run_until(common::TimePoint{500000});
  EXPECT_EQ(raw->packet_availability(ndn::Name("/coll/file/5"), sched.now()),
            DapesIntermediateStrategy::Availability::kUnknown);
}

TEST_F(StrategyTest, IntermediateRecentDataImpliesAvailability) {
  auto* s = use_intermediate(0.0);
  Data d{ndn::Name("/coll/file/9")};
  d.set_content(bytes_of("x"));
  wifi->inject(d);
  EXPECT_EQ(s->packet_availability(ndn::Name("/coll/file/9"), sched.now()),
            DapesIntermediateStrategy::Availability::kAvailable);
}

TEST_F(StrategyTest, IntermediateFallsBackToProbabilisticWhenUnknown) {
  use_intermediate(1.0);
  wifi->inject(make_interest("/mystery/file/0", 1));
  sched.run_until(common::TimePoint{100000});
  bool relayed = false;
  for (const auto& i : wifi->sent_interests) {
    if (i.name().to_uri() == "/mystery/file/0") relayed = true;
  }
  EXPECT_TRUE(relayed);
}

// --------------------------------------------- soft-state expiry sweeps

TEST_F(StrategyTest, RelayBookkeepingSweptAfterHorizon) {
  PureForwarderStrategy::Params p;
  p.forward_probability = 1.0;
  p.forward_delay_window = common::Duration::milliseconds(1);
  p.name_state_cap = 8;
  p.relay_horizon = common::Duration::seconds(1.0);
  fw.set_strategy(
      std::make_unique<PureForwarderStrategy>(sched, common::Rng(1), p));
  auto* strategy = static_cast<PureForwarderStrategy*>(&fw.strategy());

  // Every relay is satisfied by returning data, so on_interest_timeout
  // never fires and nothing would ever shrink the table without the
  // horizon sweep.
  for (uint32_t i = 0; i < 40; ++i) {
    common::TimePoint at{static_cast<int64_t>(i) * 2'000'000};  // 2 s apart
    sched.schedule_at(at, [this, i] {
      std::string uri = "/swarm/file/" + std::to_string(i);
      wifi->inject(make_interest(uri, i + 1));
    });
    sched.schedule_at(at + common::Duration::milliseconds(100), [this, i] {
      Data d{ndn::Name("/swarm/file/" + std::to_string(i))};
      d.set_content(bytes_of("x"));
      wifi->inject(d);
    });
  }
  sched.run();
  EXPECT_EQ(strategy->relay_timeouts(), 0u);
  // 40 relays happened, but entries older than the 1 s horizon are swept
  // whenever the table exceeds the cap.
  EXPECT_LE(strategy->relayed_names(), p.name_state_cap + 1);
}

TEST_F(StrategyTest, SuppressionTableSweptAfterExpiry) {
  PureForwarderStrategy::Params p;
  p.forward_probability = 1.0;
  p.forward_delay_window = common::Duration::milliseconds(1);
  p.suppression = common::Duration::milliseconds(100);
  p.name_state_cap = 8;
  fw.set_strategy(
      std::make_unique<PureForwarderStrategy>(sched, common::Rng(1), p));
  auto* strategy = static_cast<PureForwarderStrategy*>(&fw.strategy());

  // 40 fruitless forwards, 500 ms apart: each PIT timeout (300 ms
  // lifetime) adds a suppression entry that expires 100 ms later, long
  // before the next insert — the sweep keeps the table at the cap.
  for (uint32_t i = 0; i < 40; ++i) {
    sched.schedule_at(common::TimePoint{static_cast<int64_t>(i) * 500'000},
                      [this, i] {
                        std::string uri = "/dead/" + std::to_string(i);
                        wifi->inject(make_interest(uri, i + 1));
                      });
  }
  sched.run();
  EXPECT_EQ(strategy->relay_timeouts(), 40u);
  EXPECT_LE(strategy->suppressed_names(), p.name_state_cap + 1);
}

TEST_F(StrategyTest, RecentDataSweptAfterKnowledgeTtl) {
  DapesIntermediateStrategy::IntermediateParams p;
  p.base.forward_probability = 0.0;
  p.knowledge_ttl = common::Duration::milliseconds(200);
  p.recent_data_cap = 8;
  fw.set_strategy(
      std::make_unique<DapesIntermediateStrategy>(sched, common::Rng(1), p));
  auto* strategy = static_cast<DapesIntermediateStrategy*>(&fw.strategy());

  // Distinct overheard data names 500 ms apart: each is stale (past the
  // 200 ms TTL) by the time the next arrives, so once the cap trips the
  // sweep holds the table at cap size.
  for (uint32_t i = 0; i < 40; ++i) {
    sched.schedule_at(common::TimePoint{static_cast<int64_t>(i) * 500'000},
                      [this, i] {
                        Data d{ndn::Name("/heard/" + std::to_string(i))};
                        d.set_content(bytes_of("x"));
                        wifi->inject(d);
                      });
  }
  sched.run();
  EXPECT_LE(strategy->recent_data_names(), p.recent_data_cap + 1);
}

}  // namespace
}  // namespace dapes::core
