// Protocol-level unit tests for Peer behaviours not covered by the
// integration suite: adaptive discovery period, fetch gating across
// encounters, forwarder-node knowledge reuse, and failure-injection
// cases (lossy channels, disappearing holders).
#include <gtest/gtest.h>

#include "dapes/collection.hpp"
#include "dapes/forwarder_node.hpp"
#include "dapes/peer.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"

namespace dapes::core {
namespace {

struct PeerProtocol : ::testing::Test {
  sim::Scheduler sched;
  common::Rng rng{77};
  crypto::KeyChain keys;
  crypto::PrivateKey key = keys.generate_key("/producer");

  std::shared_ptr<Collection> collection(size_t file_bytes = 8 * 1024) {
    return Collection::create_synthetic(
        ndn::Name("/coll"), {{"f0", file_bytes}}, 1024,
        MetadataFormat::kPacketDigest, key);
  }

  std::unique_ptr<Peer> make_peer(sim::Medium& medium,
                                  sim::MobilityModel* mobility,
                                  const std::string& id,
                                  PeerOptions options = {}) {
    options.id = id;
    auto peer =
        std::make_unique<Peer>(sched, medium, mobility, rng.fork(), options);
    peer->keychain().import_key(key);
    peer->add_trust_anchor(key.id());
    return peer;
  }

  void run_seconds(double s) {
    sched.run_until(common::TimePoint{static_cast<int64_t>(s * 1e6)});
  }
};

TEST_F(PeerProtocol, DiscoveryBacksOffInIsolation) {
  sim::Medium::Params mp;
  mp.range_m = 50;
  sim::Medium medium(sched, mp, rng.fork());
  sim::StationaryMobility alone{{0, 0}};
  PeerOptions po;
  po.discovery_period_min = common::Duration::seconds(1.0);
  po.discovery_period_max = common::Duration::seconds(8.0);
  auto peer = make_peer(medium, &alone, "hermit", po);
  peer->subscribe(collection());
  peer->start();
  run_seconds(120);
  // With exponential backoff to 8 s (+<=25% jitter) an isolated peer
  // sends far fewer queries than the 1 s floor would produce.
  uint64_t sent = peer->stats().discovery_interests_sent;
  EXPECT_LT(sent, 40u);  // 120 at the floor; ~15-20 with backoff
  EXPECT_GT(sent, 8u);
}

TEST_F(PeerProtocol, DiscoveryStaysFastAmongNeighbors) {
  sim::Medium::Params mp;
  mp.range_m = 50;
  mp.loss_rate = 0.0;
  sim::Medium medium(sched, mp, rng.fork());
  sim::StationaryMobility pa{{0, 0}}, pb{{20, 0}};
  PeerOptions po;
  po.discovery_period_min = common::Duration::seconds(1.0);
  po.discovery_period_max = common::Duration::seconds(8.0);
  auto col = collection();
  auto a = make_peer(medium, &pa, "a", po);
  auto b = make_peer(medium, &pb, "b", po);
  a->publish(col);
  b->subscribe(col);
  a->start();
  b->start();
  run_seconds(60);
  // Neighbors keep each other fresh: near the 1 s floor (with jitter).
  EXPECT_GT(b->stats().discovery_interests_sent, 35u);
}

TEST_F(PeerProtocol, SurvivesHeavyLoss) {
  sim::Medium::Params mp;
  mp.range_m = 50;
  mp.loss_rate = 0.35;  // brutal channel
  sim::Medium medium(sched, mp, rng.fork());
  sim::StationaryMobility pa{{0, 0}}, pb{{20, 0}};
  auto col = collection();
  auto a = make_peer(medium, &pa, "a");
  auto b = make_peer(medium, &pb, "b");
  a->publish(col);
  b->subscribe(col);
  a->start();
  b->start();
  run_seconds(300);
  EXPECT_TRUE(b->complete(col->name()));
  EXPECT_GT(b->stats().interest_timeouts, 0u);  // retries happened
}

TEST_F(PeerProtocol, IntermittentContactResumesAcrossEncounters) {
  sim::Medium::Params mp;
  mp.range_m = 50;
  sim::Medium medium(sched, mp, rng.fork());
  sim::StationaryMobility pa{{0, 0}};
  // b visits a briefly, leaves before the download finishes, returns.
  sim::WaypointMobility pb({
      {common::TimePoint{0}, {30, 0}},
      {common::TimePoint{15000000}, {30, 0}},    // 15 s contact
      {common::TimePoint{25000000}, {500, 0}},   // gone
      {common::TimePoint{120000000}, {500, 0}},
      {common::TimePoint{130000000}, {30, 0}},   // returns at 130 s
      {common::TimePoint{400000000}, {30, 0}},
  });
  auto col = collection(64 * 1024);  // too big for one 15 s contact at
                                     // the scaled rate? generous either
                                     // way — the point is resumption
  PeerOptions po;
  auto a = make_peer(medium, &pa, "a", po);
  auto b = make_peer(medium, &pb, "b", po);
  a->publish(col);
  b->subscribe(col);
  a->start();
  b->start();
  run_seconds(100);
  double mid_progress = b->progress(col->name());
  run_seconds(400);
  EXPECT_TRUE(b->complete(col->name()));
  EXPECT_GE(b->progress(col->name()), mid_progress);
}

TEST_F(PeerProtocol, IntermediateNodeAccumulatesKnowledge) {
  sim::Medium::Params mp;
  mp.range_m = 50;
  sim::Medium medium(sched, mp, rng.fork());
  sim::StationaryMobility pa{{0, 0}}, pb{{30, 0}}, pi{{15, 10}};
  auto col = collection();
  auto a = make_peer(medium, &pa, "a");
  auto b = make_peer(medium, &pb, "b");
  ForwarderNode::Options fo;
  fo.kind = ForwarderKind::kDapesIntermediate;
  ForwarderNode observer(sched, medium, &pi, rng.fork(), fo);
  a->publish(col);
  b->subscribe(col);
  a->start();
  b->start();
  run_seconds(60);
  EXPECT_TRUE(b->complete(col->name()));
  // The bystander overheard announcements/data: knowledge accrued,
  // overheard content cached.
  EXPECT_GT(observer.state_bytes(), 0u);
}

TEST_F(PeerProtocol, SecondConsumerServedByFirstAfterProducerLeaves) {
  sim::Medium::Params mp;
  mp.range_m = 50;
  sim::Medium medium(sched, mp, rng.fork());
  sim::StationaryMobility pb{{30, 0}}, pc{{60, 0}};
  // Producer stays only for the first 120 s, then disappears forever.
  sim::WaypointMobility pa({
      {common::TimePoint{0}, {0, 0}},
      {common::TimePoint{120000000}, {0, 0}},
      {common::TimePoint{125000000}, {5000, 0}},
      {common::TimePoint{600000000}, {5000, 0}},
  });
  auto col = collection();
  auto a = make_peer(medium, &pa, "a");
  auto b = make_peer(medium, &pb, "b");   // in range of both a and c
  auto c = make_peer(medium, &pc, "c");   // never in range of a
  a->publish(col);
  b->subscribe(col);
  c->subscribe(col);
  a->start();
  b->start();
  c->start();
  run_seconds(500);
  EXPECT_TRUE(b->complete(col->name()));
  // c finishes even though the producer is long gone: b re-serves.
  EXPECT_TRUE(c->complete(col->name()));
}

TEST_F(PeerProtocol, PublishThenSubscribeIsIdempotent) {
  sim::Medium::Params mp;
  sim::Medium medium(sched, mp, rng.fork());
  sim::StationaryMobility pa{{0, 0}};
  auto col = collection();
  auto a = make_peer(medium, &pa, "a");
  a->publish(col);
  a->subscribe(col);  // no-op: already holds the collection state
  EXPECT_TRUE(a->complete(col->name()));
  EXPECT_DOUBLE_EQ(a->progress(col->name()), 1.0);
}

}  // namespace
}  // namespace dapes::core
